package conform

import (
	"fmt"

	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/psdf"
)

// Metamorphic oracles re-run the estimation model on a transformed
// copy of the case and compare the two results. The transforms are
// chosen so the expected relationship follows from the methodology
// itself, with no reference value needed.

// checkGrowSegment verifies that growing the platform never speeds it
// up: the case is re-estimated with one extra segment appended on the
// right. A truly unused segment is rejected by the structural
// validators (every segment must host an FU, every FU a model process,
// every process a flow), so the transform adds the minimal admissible
// content: one fresh process fed by a single one-item flow in a fresh
// trailing stage. The estimate must not decrease.
func checkGrowSegment(c *Case) error {
	est, err := c.Est()
	if err != nil {
		return fmt.Errorf("estimation run: %w", err)
	}

	doc := cloneDoc(c.Doc)
	m, plat := doc.Model, doc.Platform

	var newP psdf.ProcessID
	for _, p := range m.Processes() {
		if p >= newP {
			newP = p + 1
		}
	}
	maxOrder := 0
	for _, o := range m.Orders() {
		if o > maxOrder {
			maxOrder = o
		}
	}
	// Any flow source is master-capable on a valid platform; feed the
	// new segment from the last one in canonical order.
	flows := m.Flows()
	src := flows[len(flows)-1].Source
	m.AddFlow(psdf.Flow{Source: src, Target: newP, Items: 1, Order: maxOrder + 1, Ticks: 0})
	last := plat.Segments[len(plat.Segments)-1]
	plat.AddSegment(last.Clock, newP)

	grown, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		return fmt.Errorf("grown-platform run: %w", err)
	}
	before := est.ExecutionTimePs()
	after := int64(grown.ExecutionTimePs)
	if after < before {
		return fmt.Errorf("appending segment %d decreased the estimate: %d ps -> %d ps",
			plat.NumSegments(), before, after)
	}
	return nil
}

// checkShrinkPackage verifies that shrinking the package size never
// decreases the border-unit crossing counts (or the total package
// count): smaller packages mean at least as many packages on every
// route, per the ceil(D/s) split of section 3.1.
func checkShrinkPackage(c *Case) error {
	s := c.Doc.Platform.PackageSize
	if s <= 1 {
		return errSkip
	}
	est, err := c.Est()
	if err != nil {
		return fmt.Errorf("estimation run: %w", err)
	}

	doc := cloneDoc(c.Doc)
	doc.Platform.PackageSize = s / 2
	small, err := emulator.Run(doc.Model, doc.Platform, emulator.Config{})
	if err != nil {
		return fmt.Errorf("shrunk-package run: %w", err)
	}

	if got, want := small.TotalPackagesSent(), est.Report.TotalPackagesSent(); got < want {
		return fmt.Errorf("package size %d -> %d decreased sent packages: %d -> %d",
			s, s/2, want, got)
	}
	if got, want := buCrossings(small), buCrossings(est.Report); got < want {
		return fmt.Errorf("package size %d -> %d decreased BU crossings: %d -> %d",
			s, s/2, want, got)
	}
	return nil
}

// buCrossings totals the packages that entered any border unit.
func buCrossings(r *emulator.Report) int {
	n := 0
	for _, bu := range r.BUs {
		n += bu.InPackages
	}
	return n
}

// checkPermuteIDs verifies that process identifiers are labels, not
// behaviour: swapping the ids of two processes hosted on the same
// segment (consistently through the model and the platform mapping)
// must leave the estimated execution time unchanged.
//
// The emulator resolves genuine scheduling ties deterministically by
// process id (arbitration ties, and the canonical (order, source,
// target) emission-program order), so an arbitrary swap may pick a
// different — equally valid — schedule and legitimately shift the
// total. The oracle therefore only swaps pairs for which the relabel
// provably cannot perturb any id-based decision (see permutablePair)
// and skips cases that offer no such pair. Inside that domain any
// difference is a real conformance bug: some computation depends on
// the numeric value of an id rather than on the entity it names.
func checkPermuteIDs(c *Case) error {
	a, b, ok := permutablePair(c.Doc)
	if !ok {
		return errSkip
	}
	est, err := c.Est()
	if err != nil {
		return fmt.Errorf("estimation run: %w", err)
	}

	swap := func(p psdf.ProcessID) psdf.ProcessID {
		switch p {
		case a:
			return b
		case b:
			return a
		}
		return p
	}
	m := c.Doc.Model
	m2 := psdf.NewModel(m.Name())
	m2.SetNominalPackageSize(m.NominalPackageSize())
	for _, p := range m.Processes() {
		m2.AddProcess(swap(p))
	}
	for _, f := range m.Flows() {
		g := f
		g.Source = swap(f.Source)
		if g.Target != psdf.SystemOutput {
			g.Target = swap(f.Target)
		}
		m2.AddFlow(g)
	}
	p2 := c.Doc.Platform.Clone()
	for _, seg := range p2.Segments {
		for i := range seg.FUs {
			seg.FUs[i].Process = swap(seg.FUs[i].Process)
		}
	}

	permuted, err := emulator.Run(m2, p2, emulator.Config{})
	if err != nil {
		return fmt.Errorf("permuted run: %w", err)
	}
	before := est.ExecutionTimePs()
	after := int64(permuted.ExecutionTimePs)
	if after != before {
		return fmt.Errorf("swapping %s and %s (same segment) changed the estimate: %d ps -> %d ps",
			a, b, before, after)
	}
	return nil
}

// permutablePair finds two same-segment processes whose id swap
// cannot change any decision the emulator bases on ids, so the
// estimate must be bit-identical after the relabel. Three conditions
// make a pair (a, b) safe:
//
//  1. adjacency — no third process id lies strictly between a and b,
//     so every id comparison against a third process has the same
//     outcome before and after the swap;
//  2. one of the two never sources a flow — a pure sink never
//     requests a bus, so a and b can never meet in an arbitration
//     tie, and no flow sort ever compares them as sources;
//  3. no process emits same-order flows to both a and b — the only
//     way the canonical (order, source, target) emission-program
//     order could compare them as targets.
//
// The first eligible pair in segment order is returned; ok is false
// when the case offers none.
func permutablePair(doc *dsl.Document) (a, b psdf.ProcessID, ok bool) {
	m, plat := doc.Model, doc.Platform
	sources := make(map[psdf.ProcessID]bool)
	type emission struct {
		src   psdf.ProcessID
		order int
	}
	fanout := make(map[emission]map[psdf.ProcessID]bool)
	for _, f := range m.Flows() {
		sources[f.Source] = true
		if f.Target == psdf.SystemOutput {
			continue
		}
		k := emission{f.Source, f.Order}
		if fanout[k] == nil {
			fanout[k] = make(map[psdf.ProcessID]bool)
		}
		fanout[k][f.Target] = true
	}
	procs := m.Processes()
	adjacent := func(a, b psdf.ProcessID) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, p := range procs {
			if p > lo && p < hi {
				return false
			}
		}
		return true
	}
	sameFanout := func(a, b psdf.ProcessID) bool {
		for _, targets := range fanout {
			if targets[a] && targets[b] {
				return true
			}
		}
		return false
	}
	for _, seg := range plat.Segments {
		for i := 0; i < len(seg.FUs); i++ {
			for j := i + 1; j < len(seg.FUs); j++ {
				a, b := seg.FUs[i].Process, seg.FUs[j].Process
				if sources[a] && sources[b] {
					continue
				}
				if !adjacent(a, b) {
					continue
				}
				if sameFanout(a, b) {
					continue
				}
				return a, b, true
			}
		}
	}
	return 0, 0, false
}
