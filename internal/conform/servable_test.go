package conform

import (
	"path/filepath"
	"testing"

	"segbus/internal/core"
	"segbus/internal/schema"
)

// TestServableCases checks the filter's contract: every returned case
// really is servable, the selection is deterministic per seed, and
// distinct seeds diverge.
func TestServableCases(t *testing.T) {
	corpus, err := LoadCorpusDir(filepath.Join("..", "..", "testdata", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	cases, err := ServableCases(3, 12, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 12 {
		t.Fatalf("%d cases, want 12", len(cases))
	}
	for i, c := range cases {
		psdfXML, _, err := c.Schemes()
		if err != nil {
			t.Fatalf("case %d (%s): transform: %v", i, c.Origin, err)
		}
		if _, err := schema.ParsePSDF(psdfXML); err != nil {
			t.Errorf("case %d (%s): unparseable scheme passed the filter: %v", i, c.Origin, err)
		}
		if pre := core.Preflight(c.Doc.Model, c.Doc.Platform); pre.HasErrors() {
			t.Errorf("case %d (%s): preflight-failing case passed the filter", i, c.Origin)
		}
		if _, err := c.ReportJSON(); err != nil {
			t.Errorf("case %d (%s): servable case failed to estimate: %v", i, c.Origin, err)
		}
	}

	// Same seed: same cases, same order (compare by canonical bytes).
	again, err := ServableCases(3, 12, corpus)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cases {
		a, _, _ := cases[i].Schemes()
		b, _, _ := again[i].Schemes()
		if string(a) != string(b) {
			t.Fatalf("case %d differs across identical-seed runs", i)
		}
	}

	// A different seed must not replay the same stream.
	other, err := ServableCases(4, 12, corpus)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range cases {
		a, _, _ := cases[i].Schemes()
		b, _, _ := other[i].Schemes()
		if string(a) == string(b) {
			same++
		}
	}
	if same == len(cases) {
		t.Error("seeds 3 and 4 produced identical case streams")
	}

	if _, err := ServableCases(1, 0, nil); err == nil {
		t.Error("n=0 did not error")
	}
}
