package conform

import (
	"fmt"

	"segbus/internal/core"
	"segbus/internal/dsl"
	"segbus/internal/realplat"
	"segbus/internal/schema"
)

// ServableCases returns the first n cases of the seed's generator
// stream that a serving stack can actually estimate: their canonical
// schemes render, survive the XML round trip (schema.ParsePSDF) and
// pass core.Preflight. These are exactly the cases POST /estimate
// answers 200 for, so load harnesses built on them can treat any
// non-200 as a defect instead of filtering expected rejections at
// request time.
//
// The stream is deterministic per (seed, corpus): the same arguments
// always select the same cases in the same order. corpus may be nil.
// Roughly three generated cases in four are servable; the scan is
// capped, and falling short of n inside the cap is an error (a seed
// pathologically starved of servable cases should fail loudly, not
// truncate silently).
func ServableCases(seed int64, n int, corpus []*dsl.Document) ([]*Case, error) {
	if n <= 0 {
		return nil, fmt.Errorf("conform: ServableCases needs n > 0, got %d", n)
	}
	g := NewGenerator(seed, corpus)
	out := make([]*Case, 0, n)
	maxAttempts := 50*n + 200
	for attempt := 0; attempt < maxAttempts && len(out) < n; attempt++ {
		c := g.Next()
		c.refined = realplat.DefaultOverheads
		psdfXML, _, err := c.Schemes()
		if err != nil {
			continue
		}
		if _, err := schema.ParsePSDF(psdfXML); err != nil {
			continue // inexpressible in the XML round trip
		}
		if core.Preflight(c.Doc.Model, c.Doc.Platform).HasErrors() {
			continue
		}
		out = append(out, c)
	}
	if len(out) < n {
		return nil, fmt.Errorf("conform: only %d/%d servable cases in %d attempts (seed %d)", len(out), n, maxAttempts, seed)
	}
	return out, nil
}
