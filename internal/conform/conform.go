// Package conform implements the differential conformance harness of
// cmd/segbus-conform: it generates random well-formed (PSDF, PSM)
// model pairs with a seeded generator layered on the DSL, runs each
// pair through the estimation model, the refined (ground-truth) model
// and the static bounds analyzer, and checks a battery of oracles
// against the results.
//
// The oracles encode the relationships the paper's methodology
// promises and that PR 1's static analysis proves in part:
//
//   - bounds: LowerPs ≤ estimate ≤ UpperPs (the SB201 chain) and
//     LowerPs ≤ refined ≤ UpperPs + overhead allowance — section 3.6
//     attributes the estimation error to the skipped overheads, so the
//     refined model may exceed the estimation-model upper bound by at
//     most the serialised overhead work; on contention-free models
//     (at most one bus master) estimate ≤ refined is enforced exactly;
//   - envelope: |refined − estimate| stays inside an envelope
//     proportional to the per-package overhead work, which grows as
//     packages shrink — the Discussion-of-section-4 claim;
//   - determinism: identical inputs produce byte-identical reports and
//     traces, run to run;
//   - grow-segment: extending the platform with an extra segment (and
//     the minimal trailing flow validation demands) never decreases
//     the estimated time;
//   - shrink-package: shrinking the package size never decreases the
//     number of border-unit crossings;
//   - permute-ids: relabeling a same-segment process pair whose swap
//     provably cannot perturb the emulator's deterministic id-based
//     tie-breaking preserves the estimate exactly.
//
// On an oracle failure the harness greedily shrinks the model pair —
// dropping processes, flows and segments, growing the package size,
// shrinking item and tick counts — to a minimal reproducer that still
// fails, and persists it under testdata/conform/repros/ as a plain
// .sbd model description ready for segbus-conform -replay or
// segbus-vet triage. Every generated case can also be exported as a
// Go fuzzing seed for internal/analyze's FuzzAnalyze, making the
// harness the fuzzing corpus feeder of the static-analysis subsystem.
package conform

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"segbus/internal/analyze"
	"segbus/internal/core"
	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/obs"
	"segbus/internal/realplat"
)

// Config tunes one conformance sweep.
type Config struct {
	// Seed is the root seed; the whole sweep is a pure function of it
	// (plus the corpus contents).
	Seed int64

	// N is the number of cases to run. Zero with a positive Duration
	// means "until the deadline"; zero with no Duration selects 100.
	N int

	// Duration bounds the wall-clock time of the sweep; the sweep
	// stops at whichever of N and Duration is reached first.
	Duration time.Duration

	// Oracles selects a subset by name; nil runs every oracle.
	Oracles []string

	// Corpus seeds the generator with existing model descriptions
	// (typically the testdata/scenarios corpus): a share of the cases
	// are mutations of corpus documents rather than pure random
	// models.
	Corpus []*dsl.Document

	// ReproDir, when non-empty, receives a minimal shrunk reproducer
	// (.sbd) for every failing case.
	ReproDir string

	// Shrink disables failure shrinking when false-negative; default
	// (zero value) shrinks. Use NoShrink to turn it off.
	NoShrink bool

	// RefinedOverheads overrides the refined model's timing factors
	// (zero selects realplat's defaults). Tests use it to simulate a
	// corrupted ground truth without editing realplat.
	RefinedOverheads emulator.Overheads

	// MaxShrinkEvals caps the oracle evaluations spent shrinking one
	// failure (zero selects a default).
	MaxShrinkEvals int

	// FuzzCorpusDir, when non-empty, receives every generated case as
	// a Go fuzzing seed-corpus entry for internal/analyze's
	// FuzzAnalyze (see WriteFuzzSeed).
	FuzzCorpusDir string

	// Log, when non-nil, receives per-case progress lines.
	Log io.Writer

	// Heartbeat, when non-nil, receives rate-limited progress ticks
	// (cases done, failures so far) and a final line — the live
	// cases/sec + ETA display of cmd/segbus-conform.
	Heartbeat *obs.Heartbeat
}

// Violation is one oracle breach on one case.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Failure records one failing case of a sweep, after shrinking.
type Failure struct {
	Case      int    `json:"case"`
	Origin    string `json:"origin"`
	Oracle    string `json:"oracle"`
	Detail    string `json:"detail"`
	Processes int    `json:"processes"` // of the shrunk reproducer
	Flows     int    `json:"flows"`
	Segments  int    `json:"segments"`
	ReproPath string `json:"repro,omitempty"`
	Shrunk    bool   `json:"shrunk"`
}

// OracleTally is the pass/fail count of one oracle over a sweep.
type OracleTally struct {
	Pass int `json:"pass"`
	Fail int `json:"fail"`
	Skip int `json:"skip"`
}

// Summary aggregates one sweep.
type Summary struct {
	Seed        int64                  `json:"seed"`
	Cases       int                    `json:"cases"`
	CorpusCases int                    `json:"corpusCases"`
	Checks      int                    `json:"checks"`
	Oracles     map[string]OracleTally `json:"oracles"`
	Failures    []Failure              `json:"failures"`
	ElapsedMs   int64                  `json:"elapsedMs"`

	// Metrics is the final snapshot of the sweep's metric registry
	// (deterministic values only — see internal/obs): case, check and
	// per-oracle outcome counters, keyed by canonical metric id.
	Metrics map[string]float64 `json:"metrics"`
}

// OK reports whether the sweep passed every oracle on every case.
func (s *Summary) OK() bool { return len(s.Failures) == 0 }

// String renders the text summary.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conform: %d case(s) (seed %d, %d corpus-seeded), %d oracle check(s)\n",
		s.Cases, s.Seed, s.CorpusCases, s.Checks)
	names := make([]string, 0, len(s.Oracles))
	for name := range s.Oracles {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.Oracles[name]
		line := fmt.Sprintf("  %-14s %4d pass, %d fail", name, t.Pass, t.Fail)
		if t.Skip > 0 {
			line += fmt.Sprintf(", %d skipped", t.Skip)
		}
		b.WriteString(line + "\n")
	}
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "FAIL case %d (%s): oracle %s: %s\n", f.Case, f.Origin, f.Oracle, f.Detail)
		if f.Shrunk {
			fmt.Fprintf(&b, "  shrunk to %d process(es), %d flow(s), %d segment(s)\n",
				f.Processes, f.Flows, f.Segments)
		}
		if f.ReproPath != "" {
			fmt.Fprintf(&b, "  repro: %s\n", f.ReproPath)
		}
	}
	if s.OK() {
		b.WriteString("all oracles passed\n")
	}
	return b.String()
}

// Case is one conformance input: a validated (PSDF, PSM) document and
// the effective refined-model overheads, with the expensive runs
// cached so several oracles can share them.
type Case struct {
	Index  int
	Origin string // "generated" or "corpus:<name>"
	Doc    *dsl.Document

	refined emulator.Overheads

	est    *core.Estimation
	act    *emulator.Report
	bounds *analyze.Bounds
}

// NewCase wraps a document for oracle checking, with the refined
// model running realplat's default overheads.
func NewCase(doc *dsl.Document) *Case {
	return &Case{Origin: "caller", Doc: doc, refined: realplat.DefaultOverheads}
}

// IsSkip reports whether an oracle result is the not-applicable
// sentinel rather than a violation.
func IsSkip(err error) bool { return err == errSkip }

// Est returns the estimation-model run (with trace), computed once.
func (c *Case) Est() (*core.Estimation, error) {
	if c.est == nil {
		est, err := core.Estimate(c.Doc.Model, c.Doc.Platform, core.Options{Trace: true})
		if err != nil {
			return nil, err
		}
		c.est = est
	}
	return c.est, nil
}

// Act returns the refined-model run, computed once.
func (c *Case) Act() (*emulator.Report, error) {
	if c.act == nil {
		act, err := realplat.Run(c.Doc.Model, c.Doc.Platform, realplat.Config{Overheads: c.refined})
		if err != nil {
			return nil, err
		}
		c.act = act
	}
	return c.act, nil
}

// Bounds returns the static bounds, computed once.
func (c *Case) Bounds() (*analyze.Bounds, error) {
	if c.bounds == nil {
		b, err := analyze.ComputeBounds(c.Doc.Model, c.Doc.Platform)
		if err != nil {
			return nil, err
		}
		c.bounds = b
	}
	return c.bounds, nil
}

// Run executes one conformance sweep and returns its summary. The
// sweep is deterministic for a given (Seed, Corpus, Oracles) triple.
func Run(cfg Config) (*Summary, error) {
	oracles, err := SelectOracles(cfg.Oracles)
	if err != nil {
		return nil, err
	}
	n := cfg.N
	if n == 0 && cfg.Duration == 0 {
		n = 100
	}
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}

	gen := NewGenerator(cfg.Seed, cfg.Corpus)
	sum := &Summary{Seed: cfg.Seed, Oracles: make(map[string]OracleTally)}
	for _, o := range oracles {
		sum.Oracles[o.Name] = OracleTally{}
	}
	reg := obs.NewRegistry()
	cases := reg.Counter("segbus_conform_cases_total")
	corpusCases := reg.Counter("segbus_conform_corpus_cases_total")
	checks := reg.Counter("segbus_conform_checks_total")
	outcome := make(map[string][3]*obs.Counter, len(oracles))
	for _, o := range oracles {
		outcome[o.Name] = [3]*obs.Counter{
			reg.Counter("segbus_conform_oracle_pass_total", "oracle", o.Name),
			reg.Counter("segbus_conform_oracle_fail_total", "oracle", o.Name),
			reg.Counter("segbus_conform_oracle_skip_total", "oracle", o.Name),
		}
	}
	start := time.Now()

	for i := 0; n == 0 || i < n; i++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		c := gen.Next()
		c.refined = cfg.RefinedOverheads
		if c.refined.Zero() {
			c.refined = realplat.DefaultOverheads
		}
		sum.Cases++
		cases.Inc()
		if strings.HasPrefix(c.Origin, "corpus:") {
			sum.CorpusCases++
			corpusCases.Inc()
		}
		if cfg.FuzzCorpusDir != "" {
			if _, err := WriteFuzzSeed(cfg.FuzzCorpusDir, c.Doc); err != nil {
				return nil, fmt.Errorf("conform: writing fuzz seed: %w", err)
			}
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "case %d (%s): %d proc, %d flow, %d seg, s=%d\n",
				c.Index, c.Origin,
				c.Doc.Model.NumProcesses(), c.Doc.Model.NumFlows(),
				c.Doc.Platform.NumSegments(), c.Doc.Platform.PackageSize)
		}
		for _, o := range oracles {
			v, skipped := checkOracle(o, c)
			t := sum.Oracles[o.Name]
			sum.Checks++
			checks.Inc()
			switch {
			case skipped:
				t.Skip++
				outcome[o.Name][2].Inc()
			case v == nil:
				t.Pass++
				outcome[o.Name][0].Inc()
			default:
				t.Fail++
				outcome[o.Name][1].Inc()
				f := Failure{
					Case:   c.Index,
					Origin: c.Origin,
					Oracle: o.Name,
					Detail: v.Detail,
				}
				finishFailure(&f, c, o, cfg)
				sum.Failures = append(sum.Failures, f)
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "  FAIL %s: %s\n", o.Name, v.Detail)
				}
			}
			sum.Oracles[o.Name] = t
		}
		cfg.Heartbeat.Tick(sum.Cases, len(sum.Failures))
	}
	sum.ElapsedMs = time.Since(start).Milliseconds()
	sum.Metrics = reg.Snapshot(false)
	cfg.Heartbeat.Final(sum.Cases, len(sum.Failures))
	return sum, nil
}

// checkOracle runs one oracle on one case, translating skip sentinel
// errors. A nil violation with skipped=false means a pass.
func checkOracle(o *Oracle, c *Case) (v *Violation, skipped bool) {
	res := o.Check(c)
	switch res {
	case nil:
		return nil, false
	case errSkip:
		return nil, true
	}
	return &Violation{Oracle: o.Name, Detail: res.Error()}, false
}

// finishFailure shrinks a failing case (unless disabled) and persists
// the reproducer.
func finishFailure(f *Failure, c *Case, o *Oracle, cfg Config) {
	doc := c.Doc
	if !cfg.NoShrink {
		shrunk, changed := Shrink(doc, func(d *dsl.Document) bool {
			sc := &Case{Doc: d, refined: c.refined}
			res := o.Check(sc)
			return res != nil && res != errSkip
		}, cfg.MaxShrinkEvals)
		if changed {
			doc = shrunk
			f.Shrunk = true
			// Re-derive the failure detail on the reproducer so the
			// report matches the persisted model.
			sc := &Case{Doc: doc, refined: c.refined}
			if res := o.Check(sc); res != nil && res != errSkip {
				f.Detail = res.Error()
			}
		}
	}
	f.Processes = doc.Model.NumProcesses()
	f.Flows = doc.Model.NumFlows()
	f.Segments = doc.Platform.NumSegments()
	if cfg.ReproDir != "" {
		path, err := WriteRepro(cfg.ReproDir, f, doc, cfg.Seed)
		if err == nil {
			f.ReproPath = path
		} else if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "  repro write failed: %v\n", err)
		}
	}
}
