package conform

import (
	"errors"
	"testing"

	"segbus/internal/automata"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// TestReachabilityAgreement is the acceptance property of the exact
// reachability checker: over hundreds of generated models — plus
// cyclic mutants of each, which can genuinely deadlock — the checker's
// verdict must match the emulator's outcome, and every deadlock
// counterexample must replay into a stuck state.
func TestReachabilityAgreement(t *testing.T) {
	gen := NewGenerator(7, nil)
	checked, deadlocks := 0, 0
	for i := 0; i < 220; i++ {
		c := gen.Next()
		checked += agreeOnce(t, c.Doc.Model, c.Doc.Platform, &deadlocks)

		// Cyclic mutant: feed the first flow's target back to its
		// source at the same ordering number. Some mutants stay
		// self-consistent and drain; others starve — exactly the
		// shapes the SB101 heuristic cannot separate.
		mut := cloneDoc(c.Doc)
		fs := mut.Model.Flows()
		if len(fs) == 0 || fs[0].Target == psdf.SystemOutput {
			continue
		}
		f := fs[0]
		mut.Model.AddFlow(psdf.Flow{Source: f.Target, Target: f.Source, Items: f.Items, Order: f.Order, Ticks: 3})
		checked += agreeOnce(t, mut.Model, mut.Platform, &deadlocks)
	}
	if checked < 200 {
		t.Fatalf("only %d models reached a conclusive comparison, want >= 200", checked)
	}
	if deadlocks == 0 {
		t.Errorf("no mutant deadlocked; the agreement property was not exercised on the deadlock side")
	}
	t.Logf("checked %d models, %d deadlocking", checked, deadlocks)
}

// agreeOnce compares the checker and the emulator on one model pair,
// returning 1 when the comparison was conclusive and 0 when the model
// is outside the checker's domain (invalid or over budget).
func agreeOnce(t *testing.T, m *psdf.Model, plat *platform.Platform, deadlocks *int) int {
	t.Helper()
	sys, err := automata.Compile(m, plat)
	if err != nil {
		return 0
	}
	res := sys.Check(automata.Options{})
	if res.Verdict == automata.Inconclusive {
		return 0
	}
	_, emuErr := emulator.Run(m, plat, emulator.Config{})
	var dl *emulator.DeadlockError
	emuDeadlock := errors.As(emuErr, &dl)
	if emuErr != nil && !emuDeadlock {
		t.Fatalf("%s: emulator failed for a non-deadlock reason: %v", m.Name(), emuErr)
	}
	if emuDeadlock != (res.Verdict == automata.Deadlocks) {
		t.Fatalf("%s: checker verdict %v, emulator deadlock=%v", m.Name(), res.Verdict, emuDeadlock)
	}
	if res.Verdict == automata.Deadlocks {
		*deadlocks++
		stuck, rerr := sys.Replay(res.Trace)
		if rerr != nil {
			t.Fatalf("%s: counterexample does not replay: %v", m.Name(), rerr)
		}
		if !stuck {
			t.Fatalf("%s: counterexample replays to a live state", m.Name())
		}
	}
	return 1
}
