package conform

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"segbus/internal/dsl"
)

// LoadCorpusDir parses every .sbd model description in dir (typically
// testdata/scenarios) into generator seed documents. Documents that
// fail to parse or validate are skipped — the corpus only feeds the
// generator; broken descriptions are the DSL tests' concern.
func LoadCorpusDir(dir string) ([]*dsl.Document, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.sbd"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var docs []*dsl.Document
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		doc, err := dsl.Parse(f)
		f.Close()
		if err != nil || doc.Platform == nil || doc.Validate().HasErrors() {
			continue
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// WriteRepro persists a shrunk reproducer as a plain model description
// with a triage header, and returns its path. The file replays with
//
//	segbus-conform -replay <path> -oracles <oracle>
//
// and is a regular .sbd, so segbus-vet and segbus-m2t read it too.
func WriteRepro(dir string, f *Failure, doc *dsl.Document, seed int64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-seed%d-case%d.sbd", f.Oracle, seed, f.Case)
	path := filepath.Join(dir, name)
	var b strings.Builder
	b.WriteString("# segbus-conform reproducer (shrunk)\n")
	fmt.Fprintf(&b, "# oracle: %s\n", f.Oracle)
	fmt.Fprintf(&b, "# origin: %s, root seed %d, case %d\n", f.Origin, seed, f.Case)
	fmt.Fprintf(&b, "# detail: %s\n", strings.ReplaceAll(f.Detail, "\n", " "))
	fmt.Fprintf(&b, "# replay: segbus-conform -replay %s -oracles %s\n", path, f.Oracle)
	b.WriteString(doc.Print())
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteFuzzSeed writes one document as a Go fuzzing seed-corpus entry
// in the encoding `go test` expects, named by content hash so repeat
// sweeps are idempotent. Pointing dir at
// internal/analyze/testdata/fuzz/FuzzAnalyze feeds the conformance
// generator's output straight into the static-analysis fuzzer.
func WriteFuzzSeed(dir string, doc *dsl.Document) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	src := doc.Print()
	sum := sha256.Sum256([]byte(src))
	path := filepath.Join(dir, fmt.Sprintf("conform-%x", sum[:8]))
	content := "go test fuzz v1\nstring(" + strconv.Quote(src) + ")\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
