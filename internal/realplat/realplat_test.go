package realplat

import (
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
)

func TestRunUsesDefaultOverheads(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Refined {
		t.Error("refined run not flagged")
	}
	est, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecutionTimePs <= est.ExecutionTimePs {
		t.Errorf("refined %v not slower than estimation %v", r.ExecutionTimePs, est.ExecutionTimePs)
	}
}

func TestRunCustomOverheads(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	small, err := Run(m, p, Config{Overheads: emulator.Overheads{GrantTicks: 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(m, p, Config{Overheads: emulator.Overheads{GrantTicks: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if big.ExecutionTimePs <= small.ExecutionTimePs {
		t.Error("larger grant cost did not slow the run")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy(95, 100); got != 0.95 {
		t.Errorf("Accuracy(95,100) = %v", got)
	}
	if got := Accuracy(100, 95); got != 0.95 {
		t.Errorf("Accuracy folds over-estimates: %v", got)
	}
	if got := Accuracy(10, 0); got != 0 {
		t.Errorf("Accuracy(_, 0) = %v", got)
	}
}

// TestPaperAccuracyBands is the repository's headline reproduction
// check at the realplat level: all three of the paper's experiments
// land in their published accuracy neighbourhoods.
func TestPaperAccuracyBands(t *testing.T) {
	m := apps.MP3Model()
	cases := []struct {
		name   string
		s      int
		moveP9 bool
		lo, hi float64
	}{
		{"s36", 36, false, 0.92, 0.99},
		{"s18", 18, false, 0.90, 0.96},
		{"s36-p9moved", 36, true, 0.92, 0.99},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := apps.MP3Platform3(c.s)
			if c.moveP9 {
				p = apps.MP3Platform3MovedP9(c.s)
			}
			est, err := emulator.Run(m, p, emulator.Config{})
			if err != nil {
				t.Fatal(err)
			}
			act, err := Run(m, p, Config{})
			if err != nil {
				t.Fatal(err)
			}
			acc := Accuracy(int64(est.ExecutionTimePs), int64(act.ExecutionTimePs))
			if acc < c.lo || acc > c.hi {
				t.Errorf("accuracy %.3f outside [%v, %v]", acc, c.lo, c.hi)
			}
		})
	}
}

// TestAccuracyMonotoneInOverheads: growing any skipped-cost knob can
// only widen the gap between the estimate and the "actual" platform.
func TestAccuracyMonotoneInOverheads(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	est, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, grant := range []int{0, 2, 4, 8, 16} {
		act, err := Run(m, p, Config{Overheads: emulator.Overheads{
			GrantTicks: grant, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2,
		}})
		if err != nil {
			t.Fatal(err)
		}
		acc := Accuracy(int64(est.ExecutionTimePs), int64(act.ExecutionTimePs))
		if acc > prev {
			t.Errorf("accuracy rose from %.4f to %.4f as grant cost grew to %d", prev, acc, grant)
		}
		prev = acc
	}
}
