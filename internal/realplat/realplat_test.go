package realplat

import (
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
)

func TestRunUsesDefaultOverheads(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Refined {
		t.Error("refined run not flagged")
	}
	est, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecutionTimePs <= est.ExecutionTimePs {
		t.Errorf("refined %v not slower than estimation %v", r.ExecutionTimePs, est.ExecutionTimePs)
	}
}

func TestRunCustomOverheads(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	small, err := Run(m, p, Config{Overheads: emulator.Overheads{GrantTicks: 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(m, p, Config{Overheads: emulator.Overheads{GrantTicks: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if big.ExecutionTimePs <= small.ExecutionTimePs {
		t.Error("larger grant cost did not slow the run")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy(95, 100); got != 0.95 {
		t.Errorf("Accuracy(95,100) = %v", got)
	}
	if got := Accuracy(100, 95); got != 0.95 {
		t.Errorf("Accuracy folds over-estimates: %v", got)
	}
	if got := Accuracy(10, 0); got != 0 {
		t.Errorf("Accuracy(_, 0) = %v", got)
	}
}

// TestPaperAccuracyBands is the repository's headline reproduction
// check at the realplat level: all three of the paper's experiments
// land in their published accuracy neighbourhoods.
func TestPaperAccuracyBands(t *testing.T) {
	m := apps.MP3Model()
	cases := []struct {
		name   string
		s      int
		moveP9 bool
		lo, hi float64
	}{
		{"s36", 36, false, 0.92, 0.99},
		{"s18", 18, false, 0.90, 0.96},
		{"s36-p9moved", 36, true, 0.92, 0.99},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := apps.MP3Platform3(c.s)
			if c.moveP9 {
				p = apps.MP3Platform3MovedP9(c.s)
			}
			est, err := emulator.Run(m, p, emulator.Config{})
			if err != nil {
				t.Fatal(err)
			}
			act, err := Run(m, p, Config{})
			if err != nil {
				t.Fatal(err)
			}
			acc := Accuracy(int64(est.ExecutionTimePs), int64(act.ExecutionTimePs))
			if acc < c.lo || acc > c.hi {
				t.Errorf("accuracy %.3f outside [%v, %v]", acc, c.lo, c.hi)
			}
		})
	}
}

// TestOverheadFieldsInIsolation exercises every Overheads field on its
// own against the zero-overhead estimate on the MP3-on-3-segments
// platform, which exercises grants, clock-domain crossings and CA
// set/reset work alike. GrantTicks, SyncTicks and CASetTicks each slow
// the run on their own; CAResetTicks only occupies the CA after a
// transfer, so alone it is a timing no-op — its delay becomes visible
// once CASetTicks makes later grants wait for the CA to go idle.
func TestOverheadFieldsInIsolation(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	base, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		set   func(v int) emulator.Overheads
		slows bool
	}{
		{"GrantTicks", func(v int) emulator.Overheads { return emulator.Overheads{GrantTicks: v} }, true},
		{"SyncTicks", func(v int) emulator.Overheads { return emulator.Overheads{SyncTicks: v} }, true},
		{"CASetTicks", func(v int) emulator.Overheads { return emulator.Overheads{CASetTicks: v} }, true},
		{"CAResetTicks", func(v int) emulator.Overheads { return emulator.Overheads{CAResetTicks: v} }, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, v := range []int{2, 8, 32} {
				r, err := Run(m, p, Config{Overheads: c.set(v)})
				if err != nil {
					t.Fatal(err)
				}
				if c.slows && r.ExecutionTimePs <= base.ExecutionTimePs {
					t.Errorf("%s=%d: refined run %d ps not slower than zero-overhead %d ps",
						c.name, v, r.ExecutionTimePs, base.ExecutionTimePs)
				}
				if !c.slows && r.ExecutionTimePs != base.ExecutionTimePs {
					t.Errorf("%s=%d: changed the run (%d ps vs %d ps) despite being off the grant path",
						c.name, v, r.ExecutionTimePs, base.ExecutionTimePs)
				}
			}
		})
	}
}

// TestCAResetDelaysGrants pins the reset knob's real effect: with CA
// set work enabled, a reset cost long enough to still be running when
// the next inter-segment request arrives keeps the CA busy and delays
// that grant. Package size 18 doubles the CA request rate versus the
// paper's 36, so a 200-tick reset window reliably collides.
func TestCAResetDelaysGrants(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(18)
	setOnly, err := Run(m, p, Config{Overheads: emulator.Overheads{CASetTicks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	withReset, err := Run(m, p, Config{Overheads: emulator.Overheads{CASetTicks: 2, CAResetTicks: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if withReset.ExecutionTimePs <= setOnly.ExecutionTimePs {
		t.Errorf("CAResetTicks=200 on top of CASetTicks=2 did not slow the run: %d ps vs %d ps",
			withReset.ExecutionTimePs, setOnly.ExecutionTimePs)
	}
}

// TestAccuracyMonotoneInOverheads: growing any skipped-cost knob can
// only widen the gap between the estimate and the "actual" platform.
func TestAccuracyMonotoneInOverheads(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	est, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, grant := range []int{0, 2, 4, 8, 16} {
		act, err := Run(m, p, Config{Overheads: emulator.Overheads{
			GrantTicks: grant, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2,
		}})
		if err != nil {
			t.Fatal(err)
		}
		acc := Accuracy(int64(est.ExecutionTimePs), int64(act.ExecutionTimePs))
		if acc > prev {
			t.Errorf("accuracy rose from %.4f to %.4f as grant cost grew to %d", prev, acc, grant)
		}
		prev = acc
	}
}
