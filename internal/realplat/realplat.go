// Package realplat provides the refined cycle-level model of the
// SegBus platform that stands in for the real hardware the paper
// measures against.
//
// The paper's emulator intentionally skips several small timing
// factors (section 3.6, "Emulation and estimation"): the clock-domain
// synchronisation at the border units (about two ticks per crossing),
// the segment arbiters' grant setting and the master's response, and
// the central arbiter's grant set/reset work. The Discussion of
// section 4 attributes the ~5% estimation error to exactly these
// figures and predicts that the error grows as packages shrink
// (more packages mean more skipped per-package work).
//
// This package re-enables those factors on top of the same emulation
// machinery, yielding a ground truth with the same error structure:
// running the estimation model and the refined model on the same
// (application, configuration) pair reproduces the paper's accuracy
// experiments without the original FPGA platform.
package realplat

import (
	"segbus/internal/emulator"
	"segbus/internal/obs"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/trace"
)

// DefaultOverheads are the refined model's timing factors. SyncTicks
// and the CA figures follow the values the paper quotes (about two
// ticks per clock-domain crossing, 2–3 ticks of arbiter work).
// GrantTicks bundles the grant setting, the master's response and the
// request-polling latency of the arbiters, which the paper lists as
// the dominant unmodeled costs.
var DefaultOverheads = emulator.Overheads{
	GrantTicks:   8,
	SyncTicks:    2,
	CASetTicks:   2,
	CAResetTicks: 2,
}

// Config tunes a refined-model run.
type Config struct {
	// Overheads overrides DefaultOverheads when non-zero.
	Overheads emulator.Overheads

	// Trace, when non-nil, records busy intervals and point events.
	Trace *trace.Trace

	// Metrics, when non-nil, receives the run's monitoring counters
	// (see emulator.Config.Metrics).
	Metrics *obs.Registry

	// DetectTicks is the end-of-run detection latency in CA ticks
	// (zero selects the emulator default).
	DetectTicks int64
}

// Run executes application m on platform plat under the refined
// timing model and returns the "actual" performance report.
func Run(m *psdf.Model, plat *platform.Platform, cfg Config) (*emulator.Report, error) {
	ov := cfg.Overheads
	if ov.Zero() {
		ov = DefaultOverheads
	}
	return emulator.Run(m, plat, emulator.Config{
		Overheads:   ov,
		Trace:       cfg.Trace,
		Metrics:     cfg.Metrics,
		DetectTicks: cfg.DetectTicks,
	})
}

// Accuracy returns the estimation accuracy of estimated against actual
// execution times, as the paper computes it: estimated/actual (the
// emulator under-estimates, so the ratio is below one), expressed as a
// fraction in [0, 1].
func Accuracy(estimatedPs, actualPs int64) float64 {
	if actualPs == 0 {
		return 0
	}
	a := float64(estimatedPs) / float64(actualPs)
	if a > 1 {
		a = float64(actualPs) / float64(estimatedPs)
	}
	return a
}
