// Package obs is the repository's zero-dependency metrics subsystem:
// named counters, gauges and histograms collected in a Registry and
// exported in Prometheus text exposition or deterministic JSON.
//
// The design mirrors the *trace.Trace no-op idiom: a nil *Registry is
// a valid sink, and every metric handle obtained from it is a nil
// pointer whose methods no-op. Hot paths therefore resolve their
// handles once at set-up time and update them unconditionally — the
// disabled case costs one predictable nil check per update and zero
// allocations, which keeps the emulator's inner loop within the
// benchmark budget when monitoring is off.
//
// Handles are safe for concurrent use (atomic updates), so the
// parallel sweep harness can share one registry across workers.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil handle
// discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; negative deltas are dropped to
// keep the counter monotone). No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a floating-point metric that can go up and down. The nil
// handle discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a cumulative histogram over int64 observations with
// fixed upper bounds (plus an implicit +Inf bucket). The nil handle
// discards observations.
type Histogram struct {
	bounds    []int64 // ascending upper bounds
	counts    []atomic.Int64
	sum       atomic.Int64
	count     atomic.Int64
	exemplars []atomic.Pointer[Exemplar] // last traced observation per bucket
}

// Exemplar links one histogram bucket to the last traced request that
// landed in it: the trace id answers "show me a request that cost
// this much", which is exactly what a latency histogram cannot answer
// on its own. Exported in the Prometheus exposition using the
// OpenMetrics exemplar syntax.
type Exemplar struct {
	TraceID string
	Value   int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one value and remembers the trace id as the
// bucket's exemplar (last writer wins — the point is a recent example,
// not a census). No-op on a nil receiver; an empty trace id degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Exemplars returns the current exemplar per bucket (+Inf last); nil
// entries mark buckets no traced observation has landed in.
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// bucket maps a value to its bucket index. Linear scan: bucket lists
// are short (≤ ~16) and the branch pattern is friendlier than binary
// search at this size.
func (h *Histogram) bucket(v int64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (zero on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metricKind discriminates the registry's entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument: a family name, an optional
// label set, and exactly one live handle.
type metric struct {
	family   string // name without labels
	id       string // family plus rendered label set
	labels   string // rendered label pairs without braces ("" when unlabelled)
	kind     metricKind
	volatile bool
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// Registry is a named collection of metrics. The zero value is ready
// to use; a nil *Registry is a valid no-op sink that hands out nil
// handles.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// renderLabels renders a deterministic (sorted-by-key) label set,
// e.g. `policy="fifo",segment="2"`, without the surrounding braces.
func renderLabels(family string, labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q for %s", labels, family))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition: backslash, double-quote and newline become \\, \" and
// \n — and nothing else, per the exposition format. (Go's %q, used
// here previously, over-escapes: it turns a tab into the two
// characters \t, which a Prometheus parser reads back as a literal
// backslash followed by t.)
func EscapeLabelValue(v string) string {
	// Fast path: nothing to escape (the overwhelmingly common case —
	// label values here are policy names, endpoints and shard ids).
	i := 0
	for i < len(v) && v[i] != '\\' && v[i] != '"' && v[i] != '\n' {
		i++
	}
	if i == len(v) {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	b.WriteString(v[:i])
	for ; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// lookup returns the registered metric for the (family, labels)
// identity, creating it with mk when absent. It panics when the id is
// already registered under a different kind — that is always a
// programming error.
func (r *Registry) lookup(family string, labels []string, kind metricKind, mk func() *metric) *metric {
	ls := renderLabels(family, labels)
	id := family
	if ls != "" {
		id = family + "{" + ls + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.metrics == nil {
		r.metrics = make(map[string]*metric)
	}
	if m, ok := r.metrics[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind", id))
		}
		return m
	}
	m := mk()
	m.family = family
	m.id = id
	m.labels = ls
	m.kind = kind
	r.metrics[id] = m
	return m
}

// Counter returns (registering on first use) the counter with the
// given family name and label key/value pairs. A nil registry returns
// a nil handle.
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(family, labels, kindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	})
	return m.counter
}

// Gauge returns (registering on first use) the gauge with the given
// family name and label key/value pairs. A nil registry returns a nil
// handle.
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(family, labels, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	})
	return m.gauge
}

// VolatileGauge is Gauge for values derived from wall-clock time
// (rates, throughputs): the JSON export skips volatile metrics so
// fixed inputs export byte-identical documents, while the Prometheus
// exposition — meant for live scraping — includes them.
func (r *Registry) VolatileGauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(family, labels, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}, volatile: true}
	})
	return m.gauge
}

// Histogram returns (registering on first use) the histogram with the
// given family name, bucket upper bounds (ascending; an implicit +Inf
// bucket is appended) and label key/value pairs. A nil registry
// returns a nil handle.
func (r *Registry) Histogram(family string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(family, labels, kindHistogram, func() *metric {
		h := &Histogram{bounds: append([]int64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		h.exemplars = make([]atomic.Pointer[Exemplar], len(bounds)+1)
		return &metric{hist: h}
	})
	return m.hist
}

// Describe attaches a help string to a metric family, emitted as a
// `# HELP` line by the Prometheus exposition. No-op on a nil
// registry.
func (r *Registry) Describe(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[family] = help
}

// sorted returns the registered metrics ordered by id (family name
// first, then label rendering), under the lock.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].id < out[j].id
	})
	return out
}

// Snapshot returns the current scalar values keyed by metric id.
// Histograms contribute `<id>_count` and `<id>_sum` entries. Volatile
// metrics are skipped unless includeVolatile is set. A nil registry
// returns nil.
func (r *Registry) Snapshot(includeVolatile bool) map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		if m.volatile && !includeVolatile {
			continue
		}
		switch m.kind {
		case kindCounter:
			out[m.id] = float64(m.counter.Value())
		case kindGauge:
			out[m.id] = m.gauge.Value()
		case kindHistogram:
			out[m.id+"_count"] = float64(m.hist.Count())
			out[m.id+"_sum"] = float64(m.hist.Sum())
		}
	}
	return out
}
