package obs

import (
	"strings"
	"testing"
)

// TestEscapeLabelValue pins the exposition-format escaping rules:
// exactly backslash, double-quote and newline are escaped; every
// other byte — tabs and full UTF-8 included — passes through raw.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"plain", "fifo", "fifo"},
		{"empty", "", ""},
		{"backslash", `a\b`, `a\\b`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"all three", "\\\"\n", `\\\"\n`},
		{"tab stays raw", "a\tb", "a\tb"},
		{"carriage return stays raw", "a\rb", "a\rb"},
		{"unicode stays raw", "héllo→world", "héllo→world"},
		{"trailing backslash", `trailing\`, `trailing\\`},
		{"only escapables", "\n\n", `\n\n`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("%s: EscapeLabelValue(%q) = %q, want %q", c.name, c.in, got, c.want)
		}
	}
	// The fast path must return the input string itself (no copy).
	in := "untouched"
	if got := EscapeLabelValue(in); got != in {
		t.Errorf("clean value copied: %q", got)
	}
}

// TestPrometheusHostileLabels drives hostile label values through the
// full exposition and checks the emitted sample lines are exactly the
// escaped form the format requires.
func TestPrometheusHostileLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostile_total", "path", `C:\temp\"quoted"`).Add(3)
	r.Counter("hostile_total", "path", "multi\nline").Add(1)
	r.Gauge("hostile_gauge", "tab", "a\tb").Set(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`hostile_total{path="C:\\temp\\\"quoted\""} 3`,
		`hostile_total{path="multi\nline"} 1`,
		"hostile_gauge{tab=\"a\tb\"} 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// No raw newline may survive inside a sample line: every line must
	// be a comment or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("exposition contains an empty line (unescaped newline?):\n%s", out)
		}
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestHistogramExemplars checks exemplar recording and its
// OpenMetrics-style exposition.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []int64{10, 100}, "endpoint", "/estimate")
	h.Observe(5)                      // bucket 0, no exemplar
	h.ObserveExemplar(50, "aaaa1111") // bucket 1
	h.ObserveExemplar(60, "bbbb2222") // bucket 1: last writer wins
	h.ObserveExemplar(5000, "cccc3333")
	h.ObserveExemplar(7, "") // empty id degrades to a plain Observe

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("%d exemplar slots, want 3", len(ex))
	}
	if ex[0] != nil {
		t.Fatalf("bucket 0 grew an exemplar from an untraced observe: %+v", ex[0])
	}
	if ex[1] == nil || ex[1].TraceID != "bbbb2222" || ex[1].Value != 60 {
		t.Fatalf("bucket 1 exemplar %+v, want bbbb2222/60", ex[1])
	}
	if ex[2] == nil || ex[2].TraceID != "cccc3333" {
		t.Fatalf("+Inf exemplar %+v", ex[2])
	}
	if h.Count() != 5 || h.Sum() != 5+50+60+5000+7 {
		t.Fatalf("exemplar observes skewed the tallies: count %d sum %d", h.Count(), h.Sum())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_us_bucket{endpoint="/estimate",le="10"} 2` + "\n", // no exemplar suffix
		`lat_us_bucket{endpoint="/estimate",le="100"} 4 # {trace_id="bbbb2222"} 60`,
		`lat_us_bucket{endpoint="/estimate",le="+Inf"} 5 # {trace_id="cccc3333"} 5000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Nil handle safety.
	var nh *Histogram
	nh.ObserveExemplar(1, "x")
	if nh.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}

// TestRequestTraced checks the server catalogue's traced variant
// lands the exemplar on the endpoint's latency histogram.
func TestRequestTraced(t *testing.T) {
	r := NewRegistry()
	m := NewServerMetrics(r)
	m.RequestTraced("/estimate", "200", 250, "deadbeef")
	m.Request("/estimate", "200", 90)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# {trace_id="deadbeef"} 250`) {
		t.Fatalf("traced request produced no exemplar:\n%s", b.String())
	}

	// Nil-safe end to end.
	var nm *ServerMetrics
	nm.RequestTraced("/estimate", "200", 1, "x")
	NewServerMetrics(nil).RequestTraced("/estimate", "200", 1, "x")
}
