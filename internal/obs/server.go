package obs

import "net/http"

// Server metric catalogue: the families a long-lived segbus service
// records, mirroring the emulator catalogue in internal/emulator.
// Names follow the Prometheus conventions (unit-suffixed, _total for
// counters); the catalogue is documented in DESIGN.md ("Serving").
const (
	// MetricServedRequests counts finished HTTP requests, labelled by
	// endpoint and status code.
	MetricServedRequests = "segbus_served_requests_total"

	// MetricServedLatency is the request service-time histogram in
	// microseconds, labelled by endpoint.
	MetricServedLatency = "segbus_served_request_latency_us"

	// MetricServedInFlight gauges requests currently being handled.
	MetricServedInFlight = "segbus_served_in_flight_requests"

	// MetricServedCacheHits / Misses / Evictions count result-cache
	// outcomes.
	MetricServedCacheHits      = "segbus_served_cache_hits_total"
	MetricServedCacheMisses    = "segbus_served_cache_misses_total"
	MetricServedCacheEvictions = "segbus_served_cache_evictions_total"

	// MetricServedCoalesced counts estimate requests answered by
	// waiting on an identical in-flight emulation (single-flight
	// coalescing) instead of running their own.
	MetricServedCoalesced = "segbus_served_coalesced_total"

	// MetricServedBatchItems counts the items of /estimate/batch
	// requests, before deduplication.
	MetricServedBatchItems = "segbus_served_batch_items_total"

	// MetricServedCacheShard* are the per-shard result-cache probe
	// counters, labelled by shard index. They count cache probes (one
	// per unique key a request pipeline touches), so they reconcile as
	// hits+misses = probes and evictions ≤ insertions per shard.
	MetricServedCacheShardHits      = "segbus_served_cache_shard_hits_total"
	MetricServedCacheShardMisses    = "segbus_served_cache_shard_misses_total"
	MetricServedCacheShardEvictions = "segbus_served_cache_shard_evictions_total"

	// MetricServedPoolHits / Misses / Discards count machine-pool
	// checkouts: a hit reuses a warm emulator machine, a miss
	// constructs a fresh one, a discard drops a returned machine
	// because its shape's free list (or the pool's shape budget) was
	// full. hits+misses = emulations executed.
	MetricServedPoolHits     = "segbus_served_machine_pool_hits_total"
	MetricServedPoolMisses   = "segbus_served_machine_pool_misses_total"
	MetricServedPoolDiscards = "segbus_served_machine_pool_discards_total"

	// MetricServedRawHits counts estimate requests answered from the
	// raw-request index: the byte-level fast path that recognises a
	// verbatim repeat of an already-served request body before any XML
	// parsing or canonicalisation happens.
	MetricServedRawHits = "segbus_served_raw_index_hits_total"

	// MetricServedQueueFull counts requests shed with 429 because the
	// worker pool had no admission capacity.
	MetricServedQueueFull = "segbus_served_queue_rejections_total"

	// MetricServedDeadline counts requests that hit their deadline
	// (504) before a result was produced.
	MetricServedDeadline = "segbus_served_deadline_exceeded_total"

	// MetricServedDraining is 1 while the server is in its graceful
	// drain, 0 otherwise.
	MetricServedDraining = "segbus_served_draining"
)

// ServedLatencyBoundsUs buckets request service time in microseconds:
// cache hits land in the sub-millisecond buckets, cold emulations of
// paper-sized models in the millisecond ones, and the top buckets
// catch queueing under load.
var ServedLatencyBoundsUs = []int64{
	100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000,
}

// ServerMetrics bundles the catalogue's resolved handles for a
// serving process. Like every obs handle set it is nil-safe end to
// end: NewServerMetrics(nil) returns a value whose updates all no-op,
// so handlers update unconditionally.
type ServerMetrics struct {
	reg *Registry

	InFlight       *Gauge
	Draining       *Gauge
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheEvictions *Counter
	Coalesced      *Counter
	BatchItems     *Counter
	PoolHits       *Counter
	PoolMisses     *Counter
	PoolDiscards   *Counter
	RawHits        *Counter
	QueueFull      *Counter
	Deadline       *Counter
}

// NewServerMetrics resolves the static handles of the server
// catalogue and registers the help strings. reg may be nil.
func NewServerMetrics(reg *Registry) *ServerMetrics {
	m := &ServerMetrics{
		reg:            reg,
		InFlight:       reg.Gauge(MetricServedInFlight),
		Draining:       reg.Gauge(MetricServedDraining),
		CacheHits:      reg.Counter(MetricServedCacheHits),
		CacheMisses:    reg.Counter(MetricServedCacheMisses),
		CacheEvictions: reg.Counter(MetricServedCacheEvictions),
		Coalesced:      reg.Counter(MetricServedCoalesced),
		BatchItems:     reg.Counter(MetricServedBatchItems),
		PoolHits:       reg.Counter(MetricServedPoolHits),
		PoolMisses:     reg.Counter(MetricServedPoolMisses),
		PoolDiscards:   reg.Counter(MetricServedPoolDiscards),
		RawHits:        reg.Counter(MetricServedRawHits),
		QueueFull:      reg.Counter(MetricServedQueueFull),
		Deadline:       reg.Counter(MetricServedDeadline),
	}
	reg.Describe(MetricServedRequests, "finished HTTP requests by endpoint and status code")
	reg.Describe(MetricServedLatency, "request service time, microseconds")
	reg.Describe(MetricServedInFlight, "requests currently being handled")
	reg.Describe(MetricServedDraining, "1 while the server drains for shutdown")
	reg.Describe(MetricServedCacheHits, "estimate requests answered from the result cache")
	reg.Describe(MetricServedCacheMisses, "estimate requests that ran the emulator")
	reg.Describe(MetricServedCacheEvictions, "result-cache entries evicted to make room")
	reg.Describe(MetricServedCoalesced, "estimate requests answered by an identical in-flight emulation")
	reg.Describe(MetricServedBatchItems, "batch estimate items received, before deduplication")
	reg.Describe(MetricServedCacheShardHits, "result-cache probe hits by shard")
	reg.Describe(MetricServedCacheShardMisses, "result-cache probe misses by shard")
	reg.Describe(MetricServedCacheShardEvictions, "result-cache entries evicted by shard")
	reg.Describe(MetricServedPoolHits, "emulations that reused a pooled machine")
	reg.Describe(MetricServedPoolMisses, "emulations that constructed a fresh machine")
	reg.Describe(MetricServedPoolDiscards, "returned machines dropped because the pool was full")
	reg.Describe(MetricServedRawHits, "estimate requests answered from the raw-request index")
	reg.Describe(MetricServedQueueFull, "requests shed with 429 (worker pool saturated)")
	reg.Describe(MetricServedDeadline, "requests that exceeded their deadline (504)")
	return m
}

// Request records one finished request: the per-endpoint/status
// counter and the per-endpoint latency histogram. The dynamic label
// pair is resolved through the registry (which caches instruments by
// identity), so arbitrary endpoint/status combinations stay cheap.
func (m *ServerMetrics) Request(endpoint, status string, latencyUs int64) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter(MetricServedRequests, "endpoint", endpoint, "code", status).Inc()
	m.reg.Histogram(MetricServedLatency, ServedLatencyBoundsUs, "endpoint", endpoint).Observe(latencyUs)
}

// RequestTraced is Request for a sampled request: the latency
// observation additionally stamps the request's trace id as the
// landing bucket's exemplar, so the Prometheus exposition links every
// latency bucket to a concrete /debug/requests trace.
func (m *ServerMetrics) RequestTraced(endpoint, status string, latencyUs int64, traceID string) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter(MetricServedRequests, "endpoint", endpoint, "code", status).Inc()
	m.reg.Histogram(MetricServedLatency, ServedLatencyBoundsUs, "endpoint", endpoint).ObserveExemplar(latencyUs, traceID)
}

// Handler serves the registry in Prometheus text exposition — the
// /metrics endpoint of a serving process. A nil registry serves an
// empty exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r == nil {
			return
		}
		_ = r.WritePrometheus(w)
	})
}
