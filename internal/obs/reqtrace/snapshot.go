package reqtrace

import "strconv"

// SpanSnap is the immutable exported form of one span. Times are
// nanoseconds relative to the trace start; Parent is the index of the
// parent span in the enclosing snapshot's Spans (-1 for the root), so
// the tree reconstructs without ids.
type SpanSnap struct {
	Name    string     `json:"name"`
	Parent  int        `json:"parent"`
	StartNs int64      `json:"start_ns"`
	DurNs   int64      `json:"dur_ns"`
	Attrs   []AttrSnap `json:"attrs,omitempty"`
}

// AttrSnap is one rendered span attribute.
type AttrSnap struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Snapshot is one finished request trace: the /debug/requests JSON
// shape (inside a Document) and the input of the Perfetto bridge.
// Snapshots are immutable — they share no storage with the pooled
// Trace they were taken from.
type Snapshot struct {
	TraceID  string     `json:"trace_id"`
	Parent   string     `json:"parent,omitempty"` // the request's traceparent header, verbatim
	Endpoint string     `json:"endpoint"`
	Status   int        `json:"status"`
	StartNs  int64      `json:"start_ns"` // tracer-clock ns at request start
	DurNs    int64      `json:"dur_ns"`   // root span duration
	Spans    []SpanSnap `json:"spans"`
}

// Finish closes the root span (and force-closes any span left open —
// an error path that returned early still yields a terminated span),
// stamps the request's endpoint and status, and returns the immutable
// snapshot. The trace itself stays pooled and reusable; snapshot
// allocation is the sampled request's export cost, off the span
// recording path.
func (tr *Trace) Finish(endpoint string, status int) *Snapshot {
	if tr == nil {
		return nil
	}
	now := tr.now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) == 0 {
		return nil
	}
	snap := &Snapshot{
		TraceID:  string(tr.id[:]),
		Parent:   tr.incoming,
		Endpoint: endpoint,
		Status:   status,
		StartNs:  tr.start,
		Spans:    make([]SpanSnap, len(tr.spans)),
	}
	tr.spans[0].end = now
	for i, s := range tr.spans {
		end := s.end
		if end == 0 {
			end = now
		}
		ss := SpanSnap{
			Name:    s.name,
			Parent:  int(s.parent),
			StartNs: s.start - tr.start,
			DurNs:   end - s.start,
		}
		if len(s.attrs) > 0 {
			ss.Attrs = make([]AttrSnap, len(s.attrs))
			for j, a := range s.attrs {
				v := a.Str
				if a.IsInt {
					v = strconv.FormatInt(a.Int, 10)
				}
				ss.Attrs[j] = AttrSnap{Key: a.Key, Value: v}
			}
		}
		snap.Spans[i] = ss
	}
	snap.DurNs = snap.Spans[0].DurNs
	return snap
}

// Attr returns the value of the named attribute on the span, or "".
func (s SpanSnap) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
