package reqtrace

import "context"

// ctxKey is the private context key type for a request's Trace.
type ctxKey struct{}

// NewContext returns ctx carrying tr, so handler internals (and the
// batch fan-out goroutines inheriting the request context) reach the
// request's trace without new plumbing through every signature.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the request's Trace, or nil when the request is
// unsampled — and nil is a fully valid no-op sink, so callers record
// spans unconditionally.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
