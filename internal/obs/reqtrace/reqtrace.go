// Package reqtrace is the request-scoped tracing layer of the serving
// stack: a low-overhead, pool-backed span model that decomposes one
// HTTP request's latency into attributable stages (decode, parse,
// fingerprint, cache probe, single-flight wait, pool admission,
// emulation, serialization), the way the paper decomposes end-to-end
// latency into transfer, arbitration and computation.
//
// The design extends the repository's nil-as-no-op idiom one level up:
// a nil *Tracer and a nil *Trace are both valid sinks whose methods
// no-op, so the serving hot path records spans unconditionally and the
// cost of tracing is decided per request, not per call site.
//
//   - Sampling is head-based and deterministic: a Tracer created with
//     sample N traces every Nth request (an atomic counter, so the
//     decision is reproducible for a deterministic request order), and
//     a request carrying a W3C `traceparent` header with the sampled
//     flag set is always traced — that is how segbus-load forces
//     server-side breakdowns for the requests it cares about.
//   - Trace and span ids are derived from a seed through splitmix64,
//     not from crypto/rand, so a seeded run produces the same ids.
//   - Traces are pooled: the span slice and every span's attribute
//     slice are reused across requests, so steady-state span recording
//     allocates nothing (see TestSpanPathZeroAlloc).
//
// A finished trace is exported as an immutable Snapshot — the JSON
// shape served by /debug/requests (schema "segbus/reqtrace/v1") — and
// can be converted into an internal/trace.Trace (ToTrace) so the
// existing Perfetto exporter renders a server request exactly like an
// emulation timeline.
package reqtrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID names one span inside its Trace. The root span is always id
// 0, so the zero value is a valid parent for top-level stages.
type SpanID int32

// RootSpan is the id of the implicit root span every trace starts
// with.
const RootSpan SpanID = 0

// Attr is one key/value annotation on a span. Integer-valued
// attributes keep the raw value so recording them allocates nothing;
// they are rendered at snapshot time.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// span is the in-flight (pooled, mutable) form of one span.
type span struct {
	name   string
	parent int32
	start  int64 // tracer-clock ns
	end    int64 // 0 while open
	attrs  []Attr
}

// Trace is one sampled request's span collection. It is safe for
// concurrent use (a batch request records item spans from its fan-out
// goroutines); a nil *Trace discards everything.
type Trace struct {
	tracer *Tracer

	mu    sync.Mutex
	spans []span

	id       [32]byte // lowercase-hex trace id
	spanID   [16]byte // lowercase-hex root span id (the traceparent echo)
	incoming string   // the request's traceparent header, verbatim ("" if none)
	start    int64    // tracer-clock ns at Start
}

// Tracer decides sampling and owns the trace pool. A nil *Tracer
// never samples.
type Tracer struct {
	every uint64 // head-sample one in every; 0 disables head sampling
	seed  uint64
	ctr   atomic.Uint64 // request counter for the head decision
	idctr atomic.Uint64 // id-generation counter
	clock func() int64  // monotonic ns; swappable for deterministic tests

	mu   sync.Mutex
	free []*Trace // bounded free list (not sync.Pool: GC must not empty it)
}

// maxFree bounds the tracer's free list; traces beyond it are dropped
// for the GC.
const maxFree = 64

// New returns a Tracer that head-samples one in sampleEvery requests
// (0 disables head sampling — only traceparent-forced requests are
// traced) and derives trace ids from seed (0 selects 1).
func New(sampleEvery int, seed uint64) *Tracer {
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	if seed == 0 {
		seed = 1
	}
	base := time.Now()
	return &Tracer{
		every: uint64(sampleEvery),
		seed:  seed,
		clock: func() int64 { return int64(time.Since(base)) },
	}
}

// SetClock replaces the tracer's monotonic clock — a test seam so
// goldens over span timings are byte-deterministic. Must be called
// before the first Start.
func (t *Tracer) SetClock(clock func() int64) {
	if t == nil {
		return
	}
	t.clock = clock
}

// splitmix64 is the id-derivation mix (Vigna's splitmix64 finalizer):
// cheap, stateless, and full-period over the counter, which is all a
// reproducible trace id needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// putHex64 writes x as 16 lowercase-hex bytes.
func putHex64(dst []byte, x uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[x&0xf]
		x >>= 4
	}
}

// Start begins a trace for one request. It returns nil — record
// nothing, at no cost — unless the request is sampled: either its
// traceparent header carries the W3C sampled flag, or the head-based
// 1-in-N counter elects it. A sampled request with a valid traceparent
// keeps the caller's trace id; otherwise a seeded deterministic id is
// generated.
func (t *Tracer) Start(traceparent string) *Trace {
	if t == nil {
		return nil
	}
	inID, forced := "", false
	if traceparent != "" {
		if id, sampled, ok := ParseTraceparent(traceparent); ok {
			inID, forced = id, sampled
		}
	}
	if !forced {
		if t.every == 0 || t.ctr.Add(1)%t.every != 0 {
			return nil
		}
	}
	tr := t.get()
	tr.start = t.clock()
	if inID != "" {
		copy(tr.id[:], inID)
		tr.incoming = traceparent
	} else {
		c := t.idctr.Add(1)
		hi := splitmix64(t.seed ^ (2 * c))
		lo := splitmix64(t.seed ^ (2*c + 1))
		if hi|lo == 0 {
			lo = 1 // the all-zero trace id is invalid per W3C
		}
		putHex64(tr.id[:16], hi)
		putHex64(tr.id[16:], lo)
	}
	putHex64(tr.spanID[:], splitmix64(t.seed^splitmix64(t.idctr.Add(1))))
	tr.alloc("request", -1, tr.start)
	return tr
}

// get pops a pooled trace or allocates a fresh one.
func (t *Tracer) get() *Trace {
	t.mu.Lock()
	if n := len(t.free); n > 0 {
		tr := t.free[n-1]
		t.free = t.free[:n-1]
		t.mu.Unlock()
		return tr
	}
	t.mu.Unlock()
	return &Trace{tracer: t}
}

// Release resets tr and returns it to the pool. The caller must not
// touch tr (or any SpanID minted from it) afterwards. Snapshots taken
// with Finish are immutable copies and stay valid. No-op on nil.
func (t *Tracer) Release(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	// Keep the span backing array and each span's attr backing array;
	// alloc() below re-slices them instead of reallocating.
	for i := range tr.spans {
		tr.spans[i].attrs = tr.spans[i].attrs[:0]
	}
	tr.spans = tr.spans[:0]
	tr.incoming = ""
	tr.mu.Unlock()
	t.mu.Lock()
	if len(t.free) < maxFree {
		t.free = append(t.free, tr)
	}
	t.mu.Unlock()
}

// now returns the tracer-clock time; 0 on an orphan trace.
func (tr *Trace) now() int64 {
	if tr.tracer == nil {
		return 0
	}
	return tr.tracer.clock()
}

// alloc appends a span reusing pooled capacity (the attr slice of a
// previously used slot survives the reset). Caller holds tr.mu or has
// exclusive access.
func (tr *Trace) alloc(name string, parent int32, start int64) int32 {
	if len(tr.spans) < cap(tr.spans) {
		tr.spans = tr.spans[:len(tr.spans)+1]
		s := &tr.spans[len(tr.spans)-1]
		s.name, s.parent, s.start, s.end = name, parent, start, 0
		s.attrs = s.attrs[:0]
	} else {
		tr.spans = append(tr.spans, span{name: name, parent: parent, start: start})
	}
	return int32(len(tr.spans) - 1)
}

// Child opens a span under parent and returns its id. No-op (returns
// RootSpan) on a nil trace.
func (tr *Trace) Child(parent SpanID, name string) SpanID {
	if tr == nil {
		return RootSpan
	}
	now := tr.now()
	tr.mu.Lock()
	id := tr.alloc(name, int32(parent), now)
	tr.mu.Unlock()
	return SpanID(id)
}

// Span opens a top-level stage span (a child of the root). No-op on a
// nil trace.
func (tr *Trace) Span(name string) SpanID { return tr.Child(RootSpan, name) }

// End closes the span. Ending an already-ended span or the root is a
// no-op (the root is closed by Finish).
func (tr *Trace) End(id SpanID) {
	if tr == nil || id <= 0 {
		return
	}
	now := tr.now()
	tr.mu.Lock()
	if int(id) < len(tr.spans) && tr.spans[id].end == 0 {
		tr.spans[id].end = now
	}
	tr.mu.Unlock()
}

// SpanPast records an already-finished span of the given duration
// ending now — the shape the pool's admission-wait hook reports, where
// the wait is measured by the pool and only its length crosses the
// boundary. No-op on a nil trace.
func (tr *Trace) SpanPast(parent SpanID, name string, dur time.Duration) SpanID {
	if tr == nil {
		return RootSpan
	}
	now := tr.now()
	start := now - dur.Nanoseconds()
	tr.mu.Lock()
	id := tr.alloc(name, int32(parent), start)
	tr.spans[id].end = now
	tr.mu.Unlock()
	return SpanID(id)
}

// Attr attaches a string attribute to a span.
func (tr *Trace) Attr(id SpanID, key, val string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if int(id) < len(tr.spans) {
		tr.spans[id].attrs = append(tr.spans[id].attrs, Attr{Key: key, Str: val})
	}
	tr.mu.Unlock()
}

// AttrInt attaches an integer attribute to a span without formatting
// it (rendering happens at snapshot time, off the recording path).
func (tr *Trace) AttrInt(id SpanID, key string, v int64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if int(id) < len(tr.spans) {
		tr.spans[id].attrs = append(tr.spans[id].attrs, Attr{Key: key, Int: v, IsInt: true})
	}
	tr.mu.Unlock()
}

// ID returns the 32-character lowercase-hex trace id.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return string(tr.id[:])
}

// Traceparent renders the W3C traceparent this server echoes on the
// response: version 00, the trace id, the root span id, flags 01
// (sampled — by construction, an existing Trace is sampled).
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	copy(b[3:35], tr.id[:])
	b[35] = '-'
	copy(b[36:52], tr.spanID[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// isHexLower reports whether s is entirely lowercase hex.
func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseTraceparent validates a W3C traceparent header
// (version-traceid-parentid-flags, lowercase hex) and returns the
// trace id, whether the sampled flag is set, and validity. Version ff
// and the all-zero trace id are rejected per the spec; versions above
// 00 are accepted with the 00 field layout, as required for forward
// compatibility.
func ParseTraceparent(s string) (traceID string, sampled bool, ok bool) {
	if len(s) < 55 {
		return "", false, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return "", false, false
	}
	ver, id, parent, flags := s[0:2], s[3:35], s[36:52], s[53:55]
	if !isHexLower(ver) || !isHexLower(id) || !isHexLower(parent) || !isHexLower(flags) {
		return "", false, false
	}
	if ver == "ff" {
		return "", false, false
	}
	if len(s) > 55 && (ver == "00" || s[55] != '-') {
		// Version 00 is exactly 55 bytes; future versions may append
		// "-extra".
		return "", false, false
	}
	allZero := true
	for i := 0; i < len(id); i++ {
		if id[i] != '0' {
			allZero = false
			break
		}
	}
	if allZero {
		return "", false, false
	}
	lo := flags[1]
	var bits byte
	if lo >= '0' && lo <= '9' {
		bits = lo - '0'
	} else {
		bits = lo - 'a' + 10
	}
	return id, bits&1 == 1, true
}
