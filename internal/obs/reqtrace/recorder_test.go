package reqtrace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func snap(id string, dur int64) *Snapshot {
	return &Snapshot{TraceID: id, Endpoint: "/estimate", Status: 200, DurNs: dur,
		Spans: []SpanSnap{{Name: "request", Parent: -1, DurNs: dur}}}
}

func TestRecorderRingWrapsAndSlowestPersists(t *testing.T) {
	r := NewRecorder(4, 3)
	for i := 0; i < 10; i++ {
		// Durations peak in the middle so the slowest entries are
		// overwritten in the ring long before the run ends.
		d := int64(100 - (i-5)*(i-5)*10)
		r.Record(snap(fmt.Sprintf("%032d", i), d))
	}
	if got := r.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	last := r.Last(4)
	if len(last) != 4 {
		t.Fatalf("Last(4) returned %d", len(last))
	}
	for i, s := range last {
		want := fmt.Sprintf("%032d", 9-i)
		if s.TraceID != want {
			t.Fatalf("Last[%d] = %s, want %s (newest first)", i, s.TraceID, want)
		}
	}
	// Asking beyond the ring caps at the ring.
	if got := len(r.Last(100)); got != 4 {
		t.Fatalf("Last(100) returned %d, want 4", got)
	}
	slow := r.Slowest()
	if len(slow) != 3 {
		t.Fatalf("Slowest() returned %d, want 3", len(slow))
	}
	// i=5 (dur 100), then i=4/i=6 (dur 90) — evicted from the ring,
	// still in the slowest list.
	if slow[0].TraceID != fmt.Sprintf("%032d", 5) || slow[0].DurNs != 100 {
		t.Fatalf("slowest[0] = %s/%d", slow[0].TraceID, slow[0].DurNs)
	}
	for _, s := range slow[1:] {
		if s.DurNs != 90 {
			t.Fatalf("slowest tail %s/%d, want dur 90", s.TraceID, s.DurNs)
		}
	}
	if r.Find(fmt.Sprintf("%032d", 5)) == nil {
		t.Fatal("Find missed a slowest-only snapshot")
	}
	if r.Find(fmt.Sprintf("%032d", 9)) == nil {
		t.Fatal("Find missed a ring snapshot")
	}
	if r.Find("absent") != nil {
		t.Fatal("Find invented a snapshot")
	}
}

func TestRecorderEmptyAndNil(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record(snap("x", 1))
	if nilRec.Last(3) != nil || nilRec.Slowest() != nil || nilRec.Recorded() != 0 {
		t.Fatal("nil recorder returned data")
	}
	d := nilRec.Document(3)
	if d.Schema != DocumentSchema || len(d.Traces) != 0 || len(d.Slowest) != 0 {
		t.Fatalf("nil recorder document %+v", d)
	}
	data, err := d.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	// Empty lists must marshal as [], not null — the schema promises
	// arrays.
	for _, want := range []string{`"traces": []`, `"slowest": []`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("empty document missing %s:\n%s", want, data)
		}
	}

	r := NewRecorder(2, 2)
	if got := r.Last(2); len(got) != 0 {
		t.Fatalf("empty recorder Last = %v", got)
	}
	r.Record(nil) // ignored
	if r.Recorded() != 0 {
		t.Fatal("nil snapshot recorded")
	}
}

// TestRecorderConcurrent hammers the lock-free ring from many
// goroutines; the race detector (check.sh gives this package extra
// -race rounds) is the real assertion, plus basic sanity of what
// survives.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8, 4)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(snap(fmt.Sprintf("%024d%04d%04d", 0, w, i), int64(w*per+i)))
				r.Last(4)
				r.Slowest()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Recorded(); got != workers*per {
		t.Fatalf("Recorded() = %d, want %d", got, workers*per)
	}
	for _, s := range r.Last(8) {
		if s == nil || s.TraceID == "" {
			t.Fatal("ring returned an incomplete snapshot")
		}
	}
	slow := r.Slowest()
	if len(slow) != 4 {
		t.Fatalf("slowest %d, want 4", len(slow))
	}
	// The global maximum duration always survives in the slowest list.
	if slow[0].DurNs != int64(workers*per-1) {
		t.Fatalf("slowest[0] dur %d, want %d", slow[0].DurNs, workers*per-1)
	}
}
