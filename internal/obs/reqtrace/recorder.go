package reqtrace

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// DocumentSchema versions the /debug/requests JSON layout.
const DocumentSchema = "segbus/reqtrace/v1"

// Recorder is the flight recorder: a lock-free ring buffer of the
// last N sampled request snapshots, plus a small tracker of the
// slowest requests seen so far. Writers never block each other — one
// atomic increment claims a slot and one atomic store publishes the
// snapshot — so recording stays off the request path's critical
// section; only the (rare, sampled-only) slowest-list update takes a
// short mutex.
type Recorder struct {
	ring []atomic.Pointer[Snapshot]
	cur  atomic.Uint64 // total snapshots recorded (next slot = cur % len)

	slowN   int
	mu      sync.Mutex
	slowest []*Snapshot // sorted by DurNs descending, ties by TraceID
}

// NewRecorder returns a recorder holding the last ring sampled traces
// (0 selects 256) and tracking the slowN slowest (0 selects 8).
func NewRecorder(ring, slowN int) *Recorder {
	if ring <= 0 {
		ring = 256
	}
	if slowN <= 0 {
		slowN = 8
	}
	return &Recorder{ring: make([]atomic.Pointer[Snapshot], ring), slowN: slowN}
}

// Record publishes one snapshot. Safe for concurrent use; nil
// recorders and nil snapshots are ignored.
func (r *Recorder) Record(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	i := r.cur.Add(1) - 1
	r.ring[i%uint64(len(r.ring))].Store(s)

	r.mu.Lock()
	if len(r.slowest) < r.slowN || s.DurNs > r.slowest[len(r.slowest)-1].DurNs {
		r.slowest = append(r.slowest, s)
		sort.Slice(r.slowest, func(i, j int) bool {
			if r.slowest[i].DurNs != r.slowest[j].DurNs {
				return r.slowest[i].DurNs > r.slowest[j].DurNs
			}
			return r.slowest[i].TraceID < r.slowest[j].TraceID
		})
		if len(r.slowest) > r.slowN {
			r.slowest = r.slowest[:r.slowN]
		}
	}
	r.mu.Unlock()
}

// Recorded returns the total number of snapshots recorded so far.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.cur.Load()
}

// Last returns up to n snapshots, newest first. Concurrent recording
// may skip a slot being overwritten; every returned snapshot is
// complete.
func (r *Recorder) Last(n int) []*Snapshot {
	if r == nil || n <= 0 {
		return nil
	}
	cur := r.cur.Load()
	size := uint64(len(r.ring))
	if uint64(n) > size {
		n = int(size)
	}
	out := make([]*Snapshot, 0, n)
	for k := uint64(0); k < size && len(out) < n && k < cur; k++ {
		if s := r.ring[(cur-1-k)%size].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Slowest returns the slowest recorded snapshots, worst first.
func (r *Recorder) Slowest() []*Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*Snapshot, len(r.slowest))
	copy(out, r.slowest)
	r.mu.Unlock()
	return out
}

// Find returns the recorded snapshot with the given trace id (ring
// first, then the slowest list), or nil.
func (r *Recorder) Find(traceID string) *Snapshot {
	if r == nil {
		return nil
	}
	for i := range r.ring {
		if s := r.ring[i].Load(); s != nil && s.TraceID == traceID {
			return s
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.slowest {
		if s.TraceID == traceID {
			return s
		}
	}
	return nil
}

// Document is the /debug/requests response body.
type Document struct {
	Schema  string      `json:"schema"`
	Sampled uint64      `json:"sampled"` // total snapshots recorded
	Traces  []*Snapshot `json:"traces"`  // last n, newest first
	Slowest []*Snapshot `json:"slowest"` // worst first
}

// Document assembles the flight-recorder view: the last n sampled
// traces plus the current slowest list. A nil recorder yields a valid
// empty document.
func (r *Recorder) Document(n int) *Document {
	d := &Document{Schema: DocumentSchema, Traces: []*Snapshot{}, Slowest: []*Snapshot{}}
	if r == nil {
		return d
	}
	d.Sampled = r.Recorded()
	if t := r.Last(n); t != nil {
		d.Traces = t
	}
	if s := r.Slowest(); s != nil {
		d.Slowest = s
	}
	return d
}

// MarshalIndent renders the document as indented JSON with a trailing
// newline — the exact /debug/requests body.
func (d *Document) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
