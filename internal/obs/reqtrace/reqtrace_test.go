package reqtrace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic tracer clock advancing a fixed step per
// reading.
type fakeClock struct {
	mu   sync.Mutex
	now  int64
	step int64
}

func (c *fakeClock) read() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += c.step
	return c.now
}

func newFakeTracer(every int, step int64) *Tracer {
	tr := New(every, 42)
	tr.SetClock((&fakeClock{step: step}).read)
	return tr
}

func TestHeadSamplingDeterministic(t *testing.T) {
	tr := New(4, 1)
	var sampled []int
	for i := 1; i <= 16; i++ {
		if tt := tr.Start(""); tt != nil {
			sampled = append(sampled, i)
			tr.Release(tt)
		}
	}
	want := []int{4, 8, 12, 16}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}

	// Same seed, same request order → same ids.
	a, b := New(1, 7), New(1, 7)
	for i := 0; i < 3; i++ {
		ta, tb := a.Start(""), b.Start("")
		if ta.ID() != tb.ID() {
			t.Fatalf("request %d: id %q != %q for equal seeds", i, ta.ID(), tb.ID())
		}
		a.Release(ta)
		b.Release(tb)
	}

	// Sampling disabled: nothing traced, even after many requests.
	off := New(0, 1)
	for i := 0; i < 100; i++ {
		if off.Start("") != nil {
			t.Fatal("sampleEvery=0 must not head-sample")
		}
	}
}

func TestTraceparentForcesSampling(t *testing.T) {
	tr := New(0, 1) // head sampling off: only forced requests trace
	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	tt := tr.Start(parent)
	if tt == nil {
		t.Fatal("sampled traceparent did not force a trace")
	}
	if got := tt.ID(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("trace id %q: incoming id not adopted", got)
	}
	echo := tt.Traceparent()
	if !strings.HasPrefix(echo, "00-0123456789abcdef0123456789abcdef-") || !strings.HasSuffix(echo, "-01") {
		t.Fatalf("traceparent echo %q: want same trace id, sampled flag", echo)
	}
	if strings.Contains(echo, "00f067aa0ba902b7") {
		t.Fatalf("traceparent echo %q reuses the caller's span id", echo)
	}
	snap := tt.Finish("/estimate", 200)
	if snap.Parent != parent {
		t.Fatalf("snapshot parent %q, want the incoming header", snap.Parent)
	}
	tr.Release(tt)

	// Unsampled flag: no forcing, but a head-sampled request adopts the id.
	if tr.Start("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-00") != nil {
		t.Fatal("flag 00 must not force sampling when head sampling is off")
	}
	every := New(1, 1)
	tt = every.Start("00-aaaabbbbccccddddaaaabbbbccccdddd-00f067aa0ba902b7-00")
	if tt == nil || tt.ID() != "aaaabbbbccccddddaaaabbbbccccdddd" {
		t.Fatalf("head-sampled request did not adopt the incoming trace id (got %v)", tt.ID())
	}
	every.Release(tt)
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name, in string
		id       string
		sampled  bool
		ok       bool
	}{
		{"valid sampled", valid, "0af7651916cd43dd8448eb211c80319c", true, true},
		{"valid unsampled", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", "0af7651916cd43dd8448eb211c80319c", false, true},
		{"flags 03", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-03", "0af7651916cd43dd8448eb211c80319c", true, true},
		{"too short", valid[:54], "", false, false},
		{"bad dash", strings.Replace(valid, "-", "_", 1), "", false, false},
		{"uppercase hex", strings.ToUpper(valid), "", false, false},
		{"version ff", "ff" + valid[2:], "", false, false},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", "", false, false},
		{"v00 with trailer", valid + "-extra", "", false, false},
		{"future version trailer", "01" + valid[2:] + "-extra", "0af7651916cd43dd8448eb211c80319c", true, true},
		{"garbage", "hello", "", false, false},
		{"empty", "", "", false, false},
	}
	for _, c := range cases {
		id, sampled, ok := ParseTraceparent(c.in)
		if id != c.id || sampled != c.sampled || ok != c.ok {
			t.Errorf("%s: ParseTraceparent(%q) = (%q,%v,%v), want (%q,%v,%v)",
				c.name, c.in, id, sampled, ok, c.id, c.sampled, c.ok)
		}
	}
}

func TestSnapshotTree(t *testing.T) {
	tr := newFakeTracer(1, 10)
	tt := tr.Start("")
	a := tt.Span("decode")
	tt.AttrInt(a, "bytes", 512)
	tt.End(a)
	b := tt.Span("item")
	c := tt.Child(b, "emulate")
	tt.Attr(c, "cache", "miss")
	tt.End(c)
	tt.End(b)
	tt.SpanPast(b, "pool_wait", 30*time.Nanosecond)
	snap := tt.Finish("/estimate", 200)
	tr.Release(tt)

	if snap.Endpoint != "/estimate" || snap.Status != 200 {
		t.Fatalf("snapshot header %q/%d", snap.Endpoint, snap.Status)
	}
	if len(snap.Spans) != 5 {
		t.Fatalf("got %d spans, want 5 (root, decode, item, emulate, pool_wait)", len(snap.Spans))
	}
	root := snap.Spans[0]
	if root.Name != "request" || root.Parent != -1 {
		t.Fatalf("root span %+v", root)
	}
	if snap.DurNs != root.DurNs || root.DurNs <= 0 {
		t.Fatalf("trace duration %d, root %d", snap.DurNs, root.DurNs)
	}
	byName := map[string]SpanSnap{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["decode"].Parent != 0 || byName["decode"].Attr("bytes") != "512" {
		t.Fatalf("decode span %+v", byName["decode"])
	}
	if p := byName["emulate"].Parent; snap.Spans[p].Name != "item" {
		t.Fatalf("emulate parented to %q", snap.Spans[p].Name)
	}
	if byName["emulate"].Attr("cache") != "miss" {
		t.Fatalf("emulate attrs %+v", byName["emulate"].Attrs)
	}
	if pw := byName["pool_wait"]; pw.DurNs != 30 {
		t.Fatalf("SpanPast duration %d, want 30", pw.DurNs)
	}
	// Every span nests inside the root.
	for _, s := range snap.Spans {
		if s.StartNs < 0 || s.StartNs+s.DurNs > root.StartNs+root.DurNs {
			t.Fatalf("span %q [%d,+%d] escapes the root [%d,+%d]",
				s.Name, s.StartNs, s.DurNs, root.StartNs, root.DurNs)
		}
	}
}

func TestFinishTerminatesOpenSpans(t *testing.T) {
	tr := newFakeTracer(1, 5)
	tt := tr.Start("")
	open := tt.Span("parse")
	tt.Attr(open, "code", "SB901")
	snap := tt.Finish("/estimate", 400)
	tr.Release(tt)
	sp := snap.Spans[1]
	if sp.DurNs <= 0 {
		t.Fatalf("open span not terminated by Finish: %+v", sp)
	}
	if sp.StartNs+sp.DurNs != snap.DurNs {
		t.Fatalf("terminated span must end at the root end: %+v vs %d", sp, snap.DurNs)
	}
	if sp.Attr("code") != "SB901" {
		t.Fatalf("code attr lost: %+v", sp.Attrs)
	}
}

func TestSpanPathZeroAlloc(t *testing.T) {
	tr := New(1, 1)
	// Warm the pool and every slice capacity once.
	warm := func() {
		tt := tr.Start("")
		d := tt.Span("decode")
		tt.AttrInt(d, "bytes", 128)
		tt.End(d)
		for i := 0; i < 8; i++ {
			it := tt.Span("item")
			tt.AttrInt(it, "index", int64(i))
			em := tt.Child(it, "emulate")
			tt.Attr(em, "cache", "hit")
			tt.End(em)
			tt.SpanPast(it, "pool_wait", time.Microsecond)
			tt.End(it)
		}
		tr.Release(tt)
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("span path allocates %.1f per request in steady state, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Start("x") != nil {
		t.Fatal("nil tracer sampled")
	}
	tr.Release(nil)
	var tt *Trace
	id := tt.Span("a")
	tt.End(id)
	tt.Attr(id, "k", "v")
	tt.AttrInt(id, "k", 1)
	tt.SpanPast(id, "w", time.Second)
	if tt.Finish("e", 200) != nil || tt.ID() != "" || tt.Traceparent() != "" {
		t.Fatal("nil trace produced output")
	}
	if ToTrace(nil) != nil {
		t.Fatal("ToTrace(nil) != nil")
	}
}

func TestDocumentGolden(t *testing.T) {
	tr := newFakeTracer(1, 100)
	rec := NewRecorder(4, 2)
	for i, status := range []int{200, 400} {
		tt := tr.Start("")
		sp := tt.Span("parse")
		tt.AttrInt(sp, "round", int64(i))
		tt.End(sp)
		rec.Record(tt.Finish("/estimate", status))
		tr.Release(tt)
	}
	data, err := rec.Document(4).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	// The fake clock makes every timing deterministic, so the whole
	// document is byte-stable: schema, ordering (newest first; slowest
	// worst first) and field layout are all pinned here.
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("document does not round-trip: %v", err)
	}
	if doc.Schema != DocumentSchema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if doc.Sampled != 2 || len(doc.Traces) != 2 || len(doc.Slowest) != 2 {
		t.Fatalf("document shape: %d sampled, %d traces, %d slowest", doc.Sampled, len(doc.Traces), len(doc.Slowest))
	}
	if doc.Traces[0].Status != 400 || doc.Traces[1].Status != 200 {
		t.Fatalf("traces not newest-first: %d then %d", doc.Traces[0].Status, doc.Traces[1].Status)
	}
	if doc.Slowest[0].DurNs < doc.Slowest[1].DurNs {
		t.Fatal("slowest not sorted worst-first")
	}
	for _, want := range []string{
		`"schema": "segbus/reqtrace/v1"`,
		`"trace_id"`, `"start_ns"`, `"dur_ns"`, `"spans"`,
		`"name": "parse"`, `"key": "round"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("document missing %s:\n%s", want, data)
		}
	}
}

func TestPerfettoBridge(t *testing.T) {
	tr := newFakeTracer(1, 50)
	tt := tr.Start("")
	sp := tt.Span("emulate")
	tt.Attr(sp, "cache", "miss")
	tt.End(sp)
	snap := tt.Finish("/estimate", 200)
	tr.Release(tt)

	data, err := ToTrace(snap).Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("Perfetto export is not valid trace-event JSON: %v", err)
	}
	var stages, threads, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Name != "stage" {
				t.Fatalf("interval name %q, want stage", ev.Name)
			}
			stages++
		case "M":
			threads++
		case "i":
			instants++
		}
	}
	if stages != 2 {
		t.Fatalf("%d stage intervals, want 2 (request + emulate)", stages)
	}
	if threads == 0 || instants != 1 {
		t.Fatalf("thread metadata %d, instants %d", threads, instants)
	}
	if !strings.Contains(string(data), "emulate cache=miss") {
		t.Fatalf("span detail missing from export:\n%s", data)
	}
	if !strings.Contains(string(data), "request "+snap.TraceID[:8]) {
		t.Fatalf("root element label missing from export")
	}
}
