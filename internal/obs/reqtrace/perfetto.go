package reqtrace

import (
	"strconv"
	"strings"

	"segbus/internal/trace"
)

// ToTrace converts a request snapshot into an internal/trace.Trace so
// the existing exporters — Perfetto above all — render a server
// request with the same tooling as an emulation timeline:
//
//   - every span becomes a Stage interval on an element named after
//     the span (repeated stages, e.g. per-item batch spans, stack on
//     one row), with the attributes joined into the Detail string;
//   - the root span's element is "request <trace id prefix>", so two
//     exported requests stay distinguishable side by side;
//   - span times are nanoseconds relative to the request start, fed
//     into the trace's picosecond domain at 1 ns = 1 ps (proportions
//     and labels exact, absolute units nominal — the same convention
//     the emulator's Perfetto export documents);
//   - the request end carries a Mark with the HTTP status.
//
// The returned trace round-trips through trace.Perfetto() into
// ui.perfetto.dev / chrome://tracing.
func ToTrace(s *Snapshot) *trace.Trace {
	if s == nil {
		return nil
	}
	t := &trace.Trace{}
	rootEl := "request " + shortID(s.TraceID)
	for i, sp := range s.Spans {
		el := sp.Name
		if i == 0 {
			el = rootEl
		}
		t.AddInterval(el, trace.Stage, sp.StartNs, sp.StartNs+sp.DurNs, detailOf(s, sp))
	}
	t.AddMark(rootEl, "status "+strconv.Itoa(s.Status), s.DurNs)
	return t
}

// shortID keeps the first 8 hex digits of a trace id for labels.
func shortID(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}

// detailOf renders one span's args line: "name k=v k=v", plus the
// trace id on the root span.
func detailOf(s *Snapshot, sp SpanSnap) string {
	var b strings.Builder
	b.WriteString(sp.Name)
	if sp.Parent < 0 {
		b.WriteString(" trace=")
		b.WriteString(s.TraceID)
	}
	for _, a := range sp.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	return b.String()
}
