package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryHandsOutNoOpHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	vg := r.VolatileGauge("x_rate")
	h := r.Histogram("x_ps", []int64{1, 10})
	if c != nil || g != nil || vg != nil || h != nil {
		t.Fatal("nil registry returned live handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1.5)
	vg.Set(2.5)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles accumulated state")
	}
	r.Describe("x_total", "help")
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if r.Snapshot(true) != nil || r.Families() != nil {
		t.Error("nil registry produced data")
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int                    `json:"version"`
		Metrics map[string]interface{} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 || len(doc.Metrics) != 0 {
		t.Errorf("nil registry JSON = %s", data)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grants_total", "policy", "fifo")
	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters are monotone
	if c.Value() != 3 {
		t.Errorf("counter = %d", c.Value())
	}
	if again := r.Counter("grants_total", "policy", "fifo"); again != c {
		t.Error("re-registration returned a different handle")
	}
	g := r.Gauge("occupancy")
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Errorf("gauge = %v", g.Value())
	}
	h := r.Histogram("wait_ps", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 1000, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 6026 {
		t.Errorf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	// Bucket placement: ≤10 → 2, ≤100 → 1, ≤1000 → 1, +Inf → 1.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "b", "2", "a", "1")
	b := r.Counter("m_total", "a", "1", "b", "2")
	if a != b {
		t.Error("label order changed metric identity")
	}
	snap := r.Snapshot(true)
	if _, ok := snap[`m_total{a="1",b="2"}`]; !ok {
		t.Errorf("canonical id missing: %v", snap)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind conflict")
		}
	}()
	r.Gauge("m")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("grants_total", "bus grants by policy")
	r.Counter("grants_total", "policy", "fifo").Add(7)
	r.Counter("grants_total", "policy", "bu-first").Add(3)
	r.Gauge("occupancy").Set(0.5)
	r.VolatileGauge("rate").Set(123.5)
	h := r.Histogram("wait_ps", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP grants_total bus grants by policy",
		"# TYPE grants_total counter",
		`grants_total{policy="bu-first"} 3`,
		`grants_total{policy="fifo"} 7`,
		"# TYPE occupancy gauge",
		"occupancy 0.5",
		"rate 123.5", // volatile included in the exposition
		"# TYPE wait_ps histogram",
		`wait_ps_bucket{le="10"} 1`,
		`wait_ps_bucket{le="100"} 2`,
		`wait_ps_bucket{le="+Inf"} 3`,
		"wait_ps_sum 555",
		"wait_ps_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// bu-first sorts before fifo within the family.
	if strings.Index(out, `"bu-first"`) > strings.Index(out, `"fifo"`) {
		t.Error("label sets not sorted within family")
	}
}

func TestJSONDeterministicAndVolatileExcluded(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total", "k", "v").Add(1)
		r.VolatileGauge("rate").Set(float64(time.Now().UnixNano()))
		r.Histogram("h_ps", []int64{10}).Observe(7)
		return r
	}
	d1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("JSON not byte-deterministic:\n%s\n---\n%s", d1, d2)
	}
	if strings.Contains(string(d1), "rate") {
		t.Error("volatile metric leaked into JSON")
	}
	var doc struct {
		Version int                        `json:"version"`
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(d1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 {
		t.Errorf("version = %d", doc.Version)
	}
	if string(doc.Metrics[`a_total{k="v"}`]) != "1" {
		t.Errorf("a_total = %s", doc.Metrics[`a_total{k="v"}`])
	}
	var h struct {
		Buckets []struct {
			LE         string `json:"le"`
			Cumulative int64  `json:"cumulative"`
		} `json:"buckets"`
		Sum   int64 `json:"sum"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(doc.Metrics["h_ps"], &h); err != nil {
		t.Fatal(err)
	}
	if h.Sum != 7 || h.Count != 1 || len(h.Buckets) != 2 || h.Buckets[1].LE != "+Inf" {
		t.Errorf("histogram JSON = %+v", h)
	}
}

func TestSnapshotAndFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(4)
	r.VolatileGauge("rate").Set(9)
	r.Histogram("h_ps", []int64{10}).Observe(3)
	snap := r.Snapshot(false)
	if snap["c_total"] != 4 || snap["h_ps_count"] != 1 || snap["h_ps_sum"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
	if _, ok := snap["rate"]; ok {
		t.Error("volatile in deterministic snapshot")
	}
	if all := r.Snapshot(true); all["rate"] != 9 {
		t.Errorf("volatile snapshot = %v", all)
	}
	fams := r.Families()
	if len(fams) != 3 || fams[0] != "c_total" || fams[1] != "h_ps" || fams[2] != "rate" {
		t.Errorf("families = %v", fams)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h_ps", []int64{50})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d", got)
	}
	if got := r.Histogram("h_ps", []int64{50}).Count(); got != 8000 {
		t.Errorf("hist count = %d", got)
	}
}

func TestHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	h := NewHeartbeat(&buf, "case", time.Millisecond, 100)
	time.Sleep(2 * time.Millisecond)
	h.Tick(40, 2)
	h.Tick(41, 2) // within the interval: suppressed
	h.Final(100, 2)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "40/100 cases") || !strings.Contains(lines[0], "2 failure(s)") ||
		!strings.Contains(lines[0], "ETA") {
		t.Errorf("tick line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "100/100 cases") || !strings.Contains(lines[1], "(done)") {
		t.Errorf("final line = %q", lines[1])
	}

	var nilHB *Heartbeat
	nilHB.Tick(1, 0)
	nilHB.Final(1, 0)
	if NewHeartbeat(nil, "x", 0, 0) != nil {
		t.Error("nil writer should yield nil heartbeat")
	}

	// Unknown total: no ETA, bare count.
	buf.Reset()
	h2 := NewHeartbeat(&buf, "sample", time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	h2.Tick(7, 0)
	if !strings.Contains(buf.String(), "7 samples") || strings.Contains(buf.String(), "ETA") {
		t.Errorf("unknown-total line = %q", buf.String())
	}
}
