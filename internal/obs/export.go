package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): `# HELP`/`# TYPE` headers per
// family, one sample line per metric, histograms expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
// Families are emitted in sorted order, label sets sorted within a
// family, so the output is deterministic for deterministic inputs.
// Volatile metrics (wall-clock rates) are included: the exposition
// exists to be scraped live. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	ms := r.sorted()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			lastFamily = m.family
			if h, ok := help[m.family]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, promType(m.kind)); err != nil {
				return err
			}
		}
		if err := writePromMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// promName renders `family{labels,extra}` with the optional extra
// label pair appended after the metric's own labels.
func promName(family, labels, extraKey, extraVal string) string {
	var b strings.Builder
	b.WriteString(family)
	if labels == "" && extraKey == "" {
		return b.String()
	}
	b.WriteByte('{')
	b.WriteString(labels)
	if extraKey != "" {
		if labels != "" {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promExemplar renders a bucket's exemplar suffix in the OpenMetrics
// syntax (` # {trace_id="..."} value`), or "" when the bucket has
// none. Plain 0.0.4 scrapers that predate exemplars simply never see
// one unless request tracing is on; scrapers that negotiate
// OpenMetrics pick up the trace id behind each latency bucket.
func promExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return " # {trace_id=\"" + EscapeLabelValue(e.TraceID) + "\"} " + strconv.FormatInt(e.Value, 10)
}

func writePromMetric(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.id, m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", m.id, formatFloat(m.gauge.Value()))
		return err
	case kindHistogram:
		h := m.hist
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d%s\n",
				promName(m.family+"_bucket", m.labels, "le", strconv.FormatInt(bound, 10)),
				cum, promExemplar(h.exemplars[i].Load())); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d%s\n",
			promName(m.family+"_bucket", m.labels, "le", "+Inf"),
			cum, promExemplar(h.exemplars[len(h.bounds)].Load())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(m.family+"_sum", m.labels, "", ""), h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", promName(m.family+"_count", m.labels, "", ""), h.Count())
		return err
	}
	return nil
}

// jsonHistogram is the JSON export shape of one histogram.
type jsonHistogram struct {
	Buckets []jsonBucket `json:"buckets"`
	Sum     int64        `json:"sum"`
	Count   int64        `json:"count"`
}

type jsonBucket struct {
	LE         string `json:"le"` // upper bound, "+Inf" for the last
	Cumulative int64  `json:"cumulative"`
}

// jsonDoc is the versioned JSON export shape: metric ids mapped to
// scalar values (counters as integers, gauges as floats) or histogram
// objects. Keys are sorted by encoding/json, so the document is
// byte-deterministic for deterministic metric values — volatile
// metrics (wall-clock rates) are therefore excluded.
type jsonDoc struct {
	Version int                        `json:"version"`
	Metrics map[string]json.RawMessage `json:"metrics"`
}

// JSON renders the registry as a versioned, byte-deterministic JSON
// document in the expvar style. Volatile metrics are excluded (see
// VolatileGauge). A nil registry yields an empty valid document.
func (r *Registry) JSON() ([]byte, error) {
	doc := jsonDoc{Version: 1, Metrics: map[string]json.RawMessage{}}
	if r != nil {
		for _, m := range r.sorted() {
			if m.volatile {
				continue
			}
			var raw []byte
			var err error
			switch m.kind {
			case kindCounter:
				raw = strconv.AppendInt(nil, m.counter.Value(), 10)
			case kindGauge:
				raw, err = json.Marshal(m.gauge.Value())
			case kindHistogram:
				h := m.hist
				jh := jsonHistogram{Sum: h.Sum(), Count: h.Count()}
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					jh.Buckets = append(jh.Buckets, jsonBucket{LE: strconv.FormatInt(bound, 10), Cumulative: cum})
				}
				cum += h.counts[len(h.bounds)].Load()
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: "+Inf", Cumulative: cum})
				raw, err = json.Marshal(jh)
			}
			if err != nil {
				return nil, fmt.Errorf("obs: encoding %s: %w", m.id, err)
			}
			doc.Metrics[m.id] = raw
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: encoding JSON: %w", err)
	}
	return data, nil
}

// Families returns the distinct registered family names, sorted — the
// metric-name catalogue of a live registry. A nil registry returns
// nil.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.sorted() {
		if !seen[m.family] {
			seen[m.family] = true
			out = append(out, m.family)
		}
	}
	sort.Strings(out)
	return out
}
