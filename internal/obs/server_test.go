package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestServerMetricsNilSafe(t *testing.T) {
	m := NewServerMetrics(nil)
	m.InFlight.Set(3)
	m.CacheHits.Inc()
	m.Request("/estimate", "200", 123) // must not panic
	if m.CacheHits.Value() != 0 {
		t.Error("nil-backed counter retained a value")
	}
}

func TestServerMetricsRecorded(t *testing.T) {
	reg := NewRegistry()
	m := NewServerMetrics(reg)
	m.CacheHits.Inc()
	m.CacheMisses.Add(2)
	m.InFlight.Set(1)
	m.Request("/estimate", "200", 500)
	m.Request("/estimate", "429", 10)
	m.Request("/healthz", "200", 5)

	snap := reg.Snapshot(true)
	checks := map[string]float64{
		MetricServedCacheHits:   1,
		MetricServedCacheMisses: 2,
		MetricServedInFlight:    1,
		MetricServedRequests + `{code="200",endpoint="/estimate"}`: 1,
		MetricServedRequests + `{code="429",endpoint="/estimate"}`: 1,
		MetricServedLatency + `{endpoint="/estimate"}` + "_count":  2,
		MetricServedLatency + `{endpoint="/estimate"}` + "_sum":    510,
	}
	for id, want := range checks {
		if got := snap[id]; got != want {
			t.Errorf("%s = %v, want %v", id, got, want)
		}
	}
}

func TestServerMetricsConcurrent(t *testing.T) {
	reg := NewRegistry()
	m := NewServerMetrics(reg)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Request("/estimate", "200", int64(j))
				m.CacheHits.Inc()
			}
		}()
	}
	wg.Wait()
	if got := m.CacheHits.Value(); got != 1600 {
		t.Errorf("CacheHits = %d, want 1600", got)
	}
	snap := reg.Snapshot(true)
	if got := snap[MetricServedRequests+`{code="200",endpoint="/estimate"}`]; got != 1600 {
		t.Errorf("request counter = %v, want 1600", got)
	}
}

func TestHandlerExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewServerMetrics(reg)
	m.Request("/estimate", "200", 42)
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP " + MetricServedRequests,
		MetricServedRequests + `{code="200",endpoint="/estimate"} 1`,
		MetricServedLatency,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("nil registry: status %d body %q", rec.Code, rec.Body.String())
	}
}
