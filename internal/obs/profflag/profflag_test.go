package profflag

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newSet(t *testing.T, args ...string) (*flag.FlagSet, *Flags) {
	t.Helper()
	fs := flag.NewFlagSet("segbus-test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs, f
}

func TestPrintVersion(t *testing.T) {
	_, f := newSet(t, "-version")
	var buf bytes.Buffer
	if !f.PrintVersion(&buf) {
		t.Fatal("PrintVersion = false with -version set")
	}
	out := buf.String()
	if !strings.HasPrefix(out, "segbus-test ") {
		t.Errorf("version line = %q", out)
	}
	if !strings.Contains(out, "go1.") {
		t.Errorf("version line lacks toolchain: %q", out)
	}

	_, f = newSet(t)
	if f.PrintVersion(&buf) {
		t.Error("PrintVersion = true without -version")
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	_, f := newSet(t, "-cpuprofile", cpu, "-memprofile", mem)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	f.Stop(&errw)
	if errw.Len() != 0 {
		t.Errorf("Stop reported: %s", errw.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestNoProfilesNoFiles(t *testing.T) {
	_, f := newSet(t)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	f.Stop(&errw)
	if errw.Len() != 0 {
		t.Errorf("Stop reported: %s", errw.String())
	}
}

func TestStartBadPath(t *testing.T) {
	_, f := newSet(t, "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err := f.Start(); err == nil {
		t.Error("Start succeeded with unwritable path")
	}
}

func TestStopBadMemPath(t *testing.T) {
	_, f := newSet(t, "-memprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x"))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	f.Stop(&errw)
	if !strings.Contains(errw.String(), "-memprofile") {
		t.Errorf("Stop did not report the failure: %q", errw.String())
	}
}
