// Package profflag provides the diagnostics flags every segbus command
// shares: -version (module and toolchain identification via the build
// info embedded in the binary) and -cpuprofile/-memprofile (pprof
// output for performance work on the emulator and its harnesses).
//
// Usage, immediately after flag.Parse:
//
//	pf := profflag.Register(fs)
//	...
//	if pf.PrintVersion(stdout) {
//		return nil
//	}
//	if err := pf.Start(); err != nil {
//		return err
//	}
//	defer pf.Stop(os.Stderr)
package profflag

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
)

// Flags holds the parsed shared flags. Register wires them into a
// FlagSet; the zero value is inert.
type Flags struct {
	version    bool
	cpuProfile string
	memProfile string

	tool    string
	cpuFile *os.File
}

// Register adds -version, -cpuprofile and -memprofile to fs and
// returns the handle the command consults after parsing. The tool name
// reported by -version is the FlagSet's name.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{tool: fs.Name()}
	fs.BoolVar(&f.version, "version", false, "print version information and exit")
	fs.StringVar(&f.cpuProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.memProfile, "memprofile", "", "write a heap profile to `file` on exit")
	return f
}

// PrintVersion writes the tool's version line to w when -version was
// given and reports whether the command should exit. The line carries
// the module version (or "devel"), the VCS revision when the binary
// was built from a checkout, and the Go toolchain version.
func (f *Flags) PrintVersion(w io.Writer) bool {
	if !f.version {
		return false
	}
	fmt.Fprintln(w, f.tool+" "+Version())
	return true
}

// Version renders the version string -version prints after the tool
// name, from the build info embedded in the binary.
func Version() string {
	v := "devel"
	var rev string
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				rev = s.Value[:12]
			}
		}
	}
	if rev != "" {
		v += " (" + rev + ")"
	}
	return v + " " + runtime.Version()
}

// Start begins CPU profiling when -cpuprofile was given.
func (f *Flags) Start() error {
	if f.cpuProfile == "" {
		return nil
	}
	file, err := os.Create(f.cpuProfile)
	if err != nil {
		return fmt.Errorf("%s: -cpuprofile: %w", f.tool, err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("%s: -cpuprofile: %w", f.tool, err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes CPU profiling and writes the heap profile when
// requested. It is designed for defer: problems are reported on errw
// (the command's stderr) rather than returned, so a failed profile
// write never masks the command's own outcome.
func (f *Flags) Stop(errw io.Writer) {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			fmt.Fprintf(errw, "%s: -cpuprofile: %v\n", f.tool, err)
		}
		f.cpuFile = nil
	}
	if f.memProfile != "" {
		file, err := os.Create(f.memProfile)
		if err != nil {
			fmt.Fprintf(errw, "%s: -memprofile: %v\n", f.tool, err)
			return
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(file); err != nil {
			fmt.Fprintf(errw, "%s: -memprofile: %v\n", f.tool, err)
		}
		if err := file.Close(); err != nil {
			fmt.Fprintf(errw, "%s: -memprofile: %v\n", f.tool, err)
		}
	}
}
