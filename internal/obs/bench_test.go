package obs

import "testing"

// BenchmarkCounterDisabled is the cost the emulator pays per counter
// update when metrics are off: one nil check, no allocation.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterEnabled is the live cost: one uncontended atomic
// add.
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramDisabled measures the no-op observation path.
func BenchmarkHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("x_ps", []int64{10, 100, 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkHistogramEnabled measures a live observation: bucket scan
// plus three atomic adds.
func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("x_ps", []int64{10, 100, 1000, 10000, 100000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 200000))
	}
}
