package obs

// The design-space explorer's metric catalogue. Counters and the
// pruning-ratio gauge are deterministic for a given space (the
// wave-synchronised pruning makes them independent of the worker
// count); the per-stage wall-clock totals are volatile, so the
// deterministic JSON export — and with it the explorer's byte-stable
// output guarantee — never carries timing noise.
const (
	// MetricExploreGenerated counts candidates enumerated from the
	// space specification.
	MetricExploreGenerated = "segbus_explore_candidates_generated_total"

	// MetricExplorePruned counts candidates discarded without
	// emulation because an already-emulated point strictly dominated
	// their analytic lower bounds on every objective.
	MetricExplorePruned = "segbus_explore_candidates_pruned_total"

	// MetricExploreEmulated counts candidates that paid a full
	// emulation. generated = pruned + emulated + errors.
	MetricExploreEmulated = "segbus_explore_candidates_emulated_total"

	// MetricExploreErrors counts candidates whose bounds or emulation
	// failed; they are excluded from the front.
	MetricExploreErrors = "segbus_explore_candidate_errors_total"

	// MetricExploreWaves counts pruning waves executed.
	MetricExploreWaves = "segbus_explore_waves_total"

	// MetricExploreFrontSize is the size of the final Pareto front.
	MetricExploreFrontSize = "segbus_explore_front_size"

	// MetricExplorePruningRatio is pruned/generated of the last run.
	MetricExplorePruningRatio = "segbus_explore_pruning_ratio"

	// MetricExploreStageNs totals per-candidate stage wall time by
	// stage label (bounds, emulate, power). Volatile: excluded from
	// the deterministic export.
	MetricExploreStageNs = "segbus_explore_stage_ns_total"
)

// ExploreMetrics bundles the resolved handles for one explorer run.
// Nil-safe end to end like every obs handle set.
type ExploreMetrics struct {
	Generated    *Counter
	Pruned       *Counter
	Emulated     *Counter
	Errors       *Counter
	Waves        *Counter
	FrontSize    *Gauge
	PruningRatio *Gauge

	StageBounds  *Gauge
	StageEmulate *Gauge
	StagePower   *Gauge
}

// NewExploreMetrics resolves the static handles of the explorer
// catalogue and registers the help strings. reg may be nil.
func NewExploreMetrics(reg *Registry) *ExploreMetrics {
	m := &ExploreMetrics{
		Generated:    reg.Counter(MetricExploreGenerated),
		Pruned:       reg.Counter(MetricExplorePruned),
		Emulated:     reg.Counter(MetricExploreEmulated),
		Errors:       reg.Counter(MetricExploreErrors),
		Waves:        reg.Counter(MetricExploreWaves),
		FrontSize:    reg.Gauge(MetricExploreFrontSize),
		PruningRatio: reg.Gauge(MetricExplorePruningRatio),
		StageBounds:  reg.VolatileGauge(MetricExploreStageNs, "stage", "bounds"),
		StageEmulate: reg.VolatileGauge(MetricExploreStageNs, "stage", "emulate"),
		StagePower:   reg.VolatileGauge(MetricExploreStageNs, "stage", "power"),
	}
	reg.Describe(MetricExploreGenerated, "candidates enumerated from the space spec")
	reg.Describe(MetricExplorePruned, "candidates discarded on analytic bounds without emulation")
	reg.Describe(MetricExploreEmulated, "candidates emulated")
	reg.Describe(MetricExploreErrors, "candidates whose bounds or emulation failed")
	reg.Describe(MetricExploreWaves, "pruning waves executed")
	reg.Describe(MetricExploreFrontSize, "points on the final Pareto front")
	reg.Describe(MetricExplorePruningRatio, "pruned/generated of the last explorer run")
	reg.Describe(MetricExploreStageNs, "explorer stage wall time by stage, nanoseconds")
	return m
}
