package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Heartbeat prints periodic progress lines for long-running sweeps:
// items completed, completion rate, failure count and — when the
// total is known — an ETA. Lines are emitted at most once per
// interval, so a run that finishes inside the first interval stays
// silent; the Final line is unconditional. A nil *Heartbeat is a
// valid no-op sink, and Tick is safe to call from concurrent workers.
type Heartbeat struct {
	w     io.Writer
	label string        // item noun, e.g. "case" or "sample"
	every time.Duration // minimum spacing between lines
	total int           // 0 when unknown (duration-bounded runs)

	mu    sync.Mutex
	start time.Time
	last  time.Time
}

// NewHeartbeat returns a heartbeat writing to w every interval (a
// non-positive interval selects 5s). total may be zero when the run
// length is unknown. A nil w returns a nil (no-op) heartbeat.
func NewHeartbeat(w io.Writer, label string, every time.Duration, total int) *Heartbeat {
	if w == nil {
		return nil
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	now := time.Now()
	return &Heartbeat{w: w, label: label, every: every, total: total, start: now, last: now}
}

// Tick reports that done items have completed, failures of them
// failing; a line is printed only when the interval elapsed since the
// previous one. No-op on a nil receiver.
func (h *Heartbeat) Tick(done, failures int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	if now.Sub(h.last) < h.every {
		return
	}
	h.last = now
	fmt.Fprintln(h.w, h.line(done, failures, now))
}

// Final prints the unconditional closing line. No-op on a nil
// receiver.
func (h *Heartbeat) Final(done, failures int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintln(h.w, h.line(done, failures, time.Now())+" (done)")
}

// line renders one progress line, e.g.
// "conform: 420/1000 cases, 61.3 cases/s, 2 failures, ETA 9s".
func (h *Heartbeat) line(done, failures int, now time.Time) string {
	elapsed := now.Sub(h.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	s := fmt.Sprintf("%d", done)
	if h.total > 0 {
		s = fmt.Sprintf("%d/%d", done, h.total)
	}
	s = fmt.Sprintf("%s %ss, %.1f %ss/s, %d failure(s)", s, h.label, rate, h.label, failures)
	if h.total > 0 && rate > 0 && done < h.total {
		eta := time.Duration(float64(h.total-done) / rate * float64(time.Second)).Round(time.Second)
		s += fmt.Sprintf(", ETA %s", eta)
	}
	return s
}
