package codegen

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

func TestGenerateMP3(t *testing.T) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(36)
	prog, err := Generate(m, plat)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.SAs) != 3 {
		t.Fatalf("SAs = %d", len(prog.SAs))
	}
	// The CA schedule has one slot per inter-segment package: 33 (32
	// from segment 1 plus P4->P5 from segment 3).
	if len(prog.CA) != 33 {
		t.Errorf("CA slots = %d, want 33", len(prog.CA))
	}
	// Total grants across SAs: every package costs one grant at its
	// source plus one per border-unit hop.
	s, err := sched.Extract(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range s.Flows() {
		f := s.Flow(sched.FlowID(i))
		src, dst := plat.SegmentOf(f.Source), plat.SegmentOf(f.Target)
		want += s.Packages(sched.FlowID(i)) * (1 + plat.Hops(src, dst))
	}
	got := 0
	for _, sa := range prog.SAs {
		got += len(sa.Grants)
	}
	if got != want {
		t.Errorf("total grants = %d, want %d", got, want)
	}
}

func TestGrantsFollowStageOrder(t *testing.T) {
	prog, err := Generate(apps.MP3Model(), apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	for _, sa := range prog.SAs {
		prev := -1
		for _, g := range sa.Grants {
			if g.Stage < prev {
				t.Fatalf("SA%d grants out of stage order", sa.Segment)
			}
			prev = g.Stage
		}
	}
	prev := -1
	for _, g := range prog.CA {
		if g.Stage < prev {
			t.Fatal("CA grants out of stage order")
		}
		prev = g.Stage
	}
}

func TestGenerateMultiHop(t *testing.T) {
	m := psdf.NewModel("hop")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 72, Order: 2, Ticks: 5})
	p := platform.New("three", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	p.AddSegment(100*platform.MHz, 1)
	p.AddSegment(100*platform.MHz, 2)
	prog, err := Generate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 2's SA forwards the two transit packages (and delivers
	// one to P1).
	var sa2 *SAProgram
	for i := range prog.SAs {
		if prog.SAs[i].Segment == 2 {
			sa2 = &prog.SAs[i]
		}
	}
	forwards, delivers := 0, 0
	for _, g := range sa2.Grants {
		if g.Kind == GrantForward {
			if g.Deliver {
				delivers++
			} else {
				forwards++
				if g.ToBU != "BU23" {
					t.Errorf("forward into %q, want BU23", g.ToBU)
				}
			}
		}
	}
	if forwards != 2 || delivers != 1 {
		t.Errorf("segment 2: %d forwards, %d delivers; want 2/1", forwards, delivers)
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(psdf.NewModel("bad"), apps.MP3Platform3(36)); err == nil {
		t.Error("invalid model accepted")
	}
	m := apps.MP3Model()
	p := platform.New("tiny", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	if _, err := Generate(m, p); err == nil {
		t.Error("incomplete mapping accepted")
	}
}

func TestListing(t *testing.T) {
	prog, err := Generate(apps.MP3Model(), apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Listing()
	for _, want := range []string{
		"CA: 33 inter-segment grants",
		"SA1:", "SA2:", "SA3:",
		"grant P0   intra -> P1 pkg 1",
		"fill BU12",
		"deliver to",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestVHDL(t *testing.T) {
	prog, err := Generate(apps.MP3Model(), apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	v := prog.VHDL()
	for _, want := range []string{
		"entity sa1_scheduler is",
		"entity sa2_scheduler is",
		"entity sa3_scheduler is",
		"entity ca_scheduler is",
		"constant SCHEDULE : rom_t := (",
		"GRANT_M0",
		"GRANT_BU12",
		"rising_edge(clk)",
		"sched_done",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("VHDL missing %q", want)
		}
	}
	// Balanced entity/architecture pairs: 4 entities, 4 architectures.
	if got := strings.Count(v, "end entity"); got != 4 {
		t.Errorf("entities = %d", got)
	}
	if got := strings.Count(v, "end architecture"); got != 4 {
		t.Errorf("architectures = %d", got)
	}
}

func TestVHDLNoInterSegment(t *testing.T) {
	m := psdf.NewModel("local")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	p := platform.New("one", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	prog, err := Generate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.CA) != 0 {
		t.Errorf("CA slots = %d", len(prog.CA))
	}
	v := prog.VHDL()
	if !strings.Contains(v, "constant SLOTS : natural := 0;") {
		t.Error("empty CA schedule not emitted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(apps.MP3Model(), apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(apps.MP3Model(), apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	if a.Listing() != b.Listing() || a.VHDL() != b.VHDL() {
		t.Error("codegen nondeterministic")
	}
}
