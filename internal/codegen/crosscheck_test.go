package codegen_test

// Cross-module consistency: the generated arbiter programs are a
// static prediction of exactly the work the emulator performs. Every
// grant slot must correspond one-to-one with an emulated bus
// transaction, so the per-arbiter slot counts must equal the
// emulator's monitoring counters.

import (
	"math/rand"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/codegen"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func crossCheck(t *testing.T, label string, m *psdf.Model, plat *platform.Platform) {
	t.Helper()
	prog, err := codegen.Generate(m, plat)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(prog.CA) != r.CA.InterRequests {
		t.Errorf("%s: CA slots %d != emulated CA requests %d", label, len(prog.CA), r.CA.InterRequests)
	}
	for _, sa := range prog.SAs {
		var fills, intras, forwards int
		for _, g := range sa.Grants {
			switch g.Kind {
			case codegen.GrantIntra:
				intras++
			case codegen.GrantFill:
				fills++
			case codegen.GrantForward:
				forwards++
			}
		}
		rs := r.SA(sa.Segment)
		if fills != rs.InterRequests {
			t.Errorf("%s: SA%d fill slots %d != emulated inter requests %d",
				label, sa.Segment, fills, rs.InterRequests)
		}
		if intras+forwards != rs.IntraRequests {
			t.Errorf("%s: SA%d intra+forward slots %d != emulated intra requests %d",
				label, sa.Segment, intras+forwards, rs.IntraRequests)
		}
	}
}

func TestProgramPredictsEmulatorMP3(t *testing.T) {
	m := apps.MP3Model()
	crossCheck(t, "mp3/3seg/s36", m, apps.MP3Platform3(36))
	crossCheck(t, "mp3/3seg/s18", m, apps.MP3Platform3(18))
	crossCheck(t, "mp3/2seg", m, apps.MP3Platform2(36))
	crossCheck(t, "mp3/p9moved", m, apps.MP3Platform3MovedP9(36))
	crossCheck(t, "jpeg/3seg", apps.JPEGModel(), apps.JPEGPlatform3(apps.JPEGPackageSize))
}

func TestProgramPredictsEmulatorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		m := apps.RandomModel(rng, 4, 4, 36)
		plat := apps.RandomPlatform(rng, m, 4, 36)
		crossCheck(t, "random", m, plat)
	}
}
