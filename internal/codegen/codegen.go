// Package codegen implements the paper's stated future work (section
// 5): arbiter code generation for the implementation of application
// schedules.
//
// The SegBus arbiters realise the application's data flow: each
// segment arbiter grants its local masters in the order the PSDF
// schedule prescribes, and the central arbiter connects segment chains
// for the inter-segment transfers in schedule order. This package
// derives, from a (PSDF model, platform) pair, the per-arbiter grant
// programs and renders them either as a human-readable schedule
// listing or as synthesizable VHDL skeletons matching the platform's
// implementation language (the SegBus platform itself is a VHDL
// design).
package codegen

import (
	"fmt"
	"strings"

	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// GrantKind classifies one arbiter grant slot.
type GrantKind int

// Grant kinds.
const (
	GrantIntra   GrantKind = iota // local master -> local slave
	GrantFill                     // local master -> border unit (inter-segment start)
	GrantForward                  // border unit -> local lines (delivery or next hop)
)

// String implements fmt.Stringer.
func (k GrantKind) String() string {
	switch k {
	case GrantIntra:
		return "intra"
	case GrantFill:
		return "fill"
	case GrantForward:
		return "forward"
	}
	return fmt.Sprintf("GrantKind(%d)", int(k))
}

// Grant is one slot of a segment arbiter's program: grant the bus to
// Master (or to the border unit From) for one package of Flow.
type Grant struct {
	Kind    GrantKind
	Stage   int            // schedule stage index (0-based)
	Order   int            // the stage's ordering number T
	Flow    psdf.Flow      // the flow the package belongs to
	Package int            // 1-based package index within the flow
	Master  psdf.ProcessID // granted master (Kind != GrantForward)
	FromBU  string         // granting side BU name (Kind == GrantForward)
	Deliver bool           // forward delivers to the local slave
	ToBU    string         // fill/forward destination BU ("" for deliveries)
	ToSlave psdf.ProcessID // final target of the package
}

// SAProgram is the generated grant program of one segment arbiter.
type SAProgram struct {
	Segment int
	Grants  []Grant
}

// CAGrant is one slot of the central arbiter's program: connect the
// chain from segment Src to segment Dst for one package.
type CAGrant struct {
	Stage   int
	Order   int
	Flow    psdf.Flow
	Package int
	Src     int
	Dst     int
	Hops    int
}

// Program is the complete generated arbitration schedule.
type Program struct {
	Application string
	Platform    string
	PackageSize int
	SAs         []SAProgram // ascending by segment
	CA          []CAGrant
}

// Generate derives the arbiter programs from the model and the
// platform. The model and mapping are validated first.
func Generate(m *psdf.Model, plat *platform.Platform) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := plat.ValidateMapping(m); err != nil {
		return nil, err
	}
	s, err := sched.Extract(m, plat.PackageSize)
	if err != nil {
		return nil, err
	}

	prog := &Program{
		Application: m.Name(),
		Platform:    plat.Name,
		PackageSize: plat.PackageSize,
	}
	saOf := make(map[int]*SAProgram)
	for _, seg := range plat.Segments {
		prog.SAs = append(prog.SAs, SAProgram{Segment: seg.Index})
	}
	for i := range prog.SAs {
		saOf[prog.SAs[i].Segment] = &prog.SAs[i]
	}

	for si, st := range s.Stages() {
		for _, id := range st.Flows {
			f := s.Flow(id)
			src := plat.SegmentOf(f.Source)
			dst := src
			if f.Target != psdf.SystemOutput {
				dst = plat.SegmentOf(f.Target)
			}
			route, _ := plat.Route(src, dst)
			for pkg := 1; pkg <= s.Packages(id); pkg++ {
				if src == dst {
					saOf[src].Grants = append(saOf[src].Grants, Grant{
						Kind: GrantIntra, Stage: si, Order: st.Order,
						Flow: f, Package: pkg, Master: f.Source, ToSlave: f.Target,
					})
					continue
				}
				prog.CA = append(prog.CA, CAGrant{
					Stage: si, Order: st.Order, Flow: f, Package: pkg,
					Src: src, Dst: dst, Hops: len(route),
				})
				saOf[src].Grants = append(saOf[src].Grants, Grant{
					Kind: GrantFill, Stage: si, Order: st.Order,
					Flow: f, Package: pkg, Master: f.Source,
					ToBU: route[0].Name(), ToSlave: f.Target,
				})
				for hop, bu := range route {
					nextSeg := towardsNext(src, dst, bu)
					g := Grant{
						Kind: GrantForward, Stage: si, Order: st.Order,
						Flow: f, Package: pkg, FromBU: bu.Name(), ToSlave: f.Target,
					}
					if hop == len(route)-1 {
						g.Deliver = true
					} else {
						g.ToBU = route[hop+1].Name()
					}
					saOf[nextSeg].Grants = append(saOf[nextSeg].Grants, g)
				}
			}
		}
	}
	return prog, nil
}

// towardsNext returns the segment a package leaving bu heads into when
// travelling from src to dst: the bridge's right side on a rightward
// journey, its left side otherwise.
func towardsNext(src, dst int, bu platform.BU) int {
	if src < dst {
		return bu.Right
	}
	return bu.Left
}

// Listing renders the program as a human-readable schedule: one block
// per arbiter, one line per grant slot, in schedule order.
func (p *Program) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arbitration schedule for %q on %q (package size %d)\n",
		p.Application, p.Platform, p.PackageSize)
	fmt.Fprintf(&b, "\nCA: %d inter-segment grants\n", len(p.CA))
	for i, g := range p.CA {
		fmt.Fprintf(&b, "  %3d: order %-3d connect seg%d..seg%d (%d hop(s)) for %s->%s pkg %d\n",
			i, g.Order, g.Src, g.Dst, g.Hops, g.Flow.Source, g.Flow.Target, g.Package)
	}
	for _, sa := range p.SAs {
		fmt.Fprintf(&b, "\nSA%d: %d grants\n", sa.Segment, len(sa.Grants))
		for i, g := range sa.Grants {
			switch g.Kind {
			case GrantIntra:
				fmt.Fprintf(&b, "  %3d: order %-3d grant %-4s intra -> %s pkg %d\n",
					i, g.Order, g.Master, g.ToSlave, g.Package)
			case GrantFill:
				fmt.Fprintf(&b, "  %3d: order %-3d grant %-4s fill %s (for %s) pkg %d\n",
					i, g.Order, g.Master, g.ToBU, g.ToSlave, g.Package)
			case GrantForward:
				target := "deliver to " + g.ToSlave.String()
				if !g.Deliver {
					target = "forward into " + g.ToBU
				}
				fmt.Fprintf(&b, "  %3d: order %-3d grant %-4s %s pkg %d\n",
					i, g.Order, g.FromBU, target, g.Package)
			}
		}
	}
	return b.String()
}
