package segbus

import (
	"segbus/internal/codegen"
	"segbus/internal/power"
	"segbus/internal/stats"
	"segbus/internal/sweep"
)

// Extensions beyond the paper's core technique: arbiter code
// generation (the paper's stated future work, section 5) and
// activity-based energy estimation (the power angle its conclusion
// raises via its reference [9]).

type (
	// ArbiterProgram is a generated arbitration schedule: per-SA grant
	// programs plus the CA's connection schedule.
	ArbiterProgram = codegen.Program
	// Grant is one segment-arbiter grant slot.
	Grant = codegen.Grant
	// CAGrant is one central-arbiter connection slot.
	CAGrant = codegen.CAGrant
	// EnergyParams are per-event energy coefficients.
	EnergyParams = power.Params
	// EnergyReport is an activity-based energy estimate.
	EnergyReport = power.Report
)

// Sensitivity analysis and congestion diagnostics.
type (
	// Curve is a one-parameter sensitivity series.
	Curve = sweep.Curve
	// SweepPoint is one sample of a Curve.
	SweepPoint = sweep.Point
	// Congestion quantifies a border unit as a bottleneck.
	Congestion = stats.Congestion
)

// SweepPackageSizes estimates the configuration once per package size.
func SweepPackageSizes(m *Model, base *Platform, sizes []int) Curve {
	return sweep.PackageSizes(m, base, sizes)
}

// SweepHeaderTicks estimates once per per-package protocol cost.
func SweepHeaderTicks(m *Model, base *Platform, ticks []int) Curve {
	return sweep.HeaderTicks(m, base, ticks)
}

// SweepCAHopTicks estimates once per CA chain set-up cost.
func SweepCAHopTicks(m *Model, base *Platform, ticks []int) Curve {
	return sweep.CAHopTicks(m, base, ticks)
}

// SweepSegmentClock estimates once per clock frequency of the given
// 1-based segment.
func SweepSegmentClock(m *Model, base *Platform, segment int, clocks []Hz) (Curve, error) {
	return sweep.SegmentClock(m, base, segment, clocks)
}

// Congestions ranks a report's border units by waiting share, worst
// first — the traffic-congestion analysis the paper's conclusion asks
// the designer to perform.
func Congestions(r *Report) []Congestion { return stats.Congestions(r) }

// CongestionReport renders the congestion ranking with verdicts.
func CongestionReport(r *Report) string { return stats.CongestionReport(r) }

// GenerateArbiters derives the arbiter grant programs that implement
// the application schedule on the given platform. Render the result
// with its Listing (human-readable) or VHDL (synthesizable skeleton)
// methods.
func GenerateArbiters(m *Model, p *Platform) (*ArbiterProgram, error) {
	return codegen.Generate(m, p)
}

// EstimateEnergy derives an activity-based energy estimate for an
// emulation report. Pass the zero EnergyParams to use the default
// coefficients.
func EstimateEnergy(m *Model, p *Platform, r *Report, params EnergyParams) (*EnergyReport, error) {
	return power.Estimate(m, p, r, params)
}
