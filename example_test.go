package segbus_test

// Additional godoc examples for the main entry points of the flow.

import (
	"fmt"
	"strings"

	"segbus"
)

// ExampleTransform shows the model-to-text step: the generated PSDF
// scheme encodes each flow in its element name, exactly as the paper
// documents ("P1_576_1_250").
func ExampleTransform() {
	m := segbus.NewModel("demo")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 576, Order: 1, Ticks: 250})

	p := segbus.NewPlatform("demo-1seg", 100*segbus.MHz, 36)
	p.AddSegment(90*segbus.MHz, 0, 1)

	psdfXML, _, err := segbus.Transform(m, p)
	if err != nil {
		panic(err)
	}
	for _, line := range strings.Split(string(psdfXML), "\n") {
		if strings.Contains(line, "Transfer") && strings.Contains(line, "P1_") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
	// Output:
	// <xs:element name="P1_576_1_250" type="Transfer"/>
}

// ExampleParseDSL shows the textual front end: describe the system,
// validate it, estimate it.
func ExampleParseDSL() {
	text := `
application demo
flow P0 -> P1 items=72 order=1 ticks=10
platform demo-2seg
ca-clock 100MHz
package-size 36
segment 1 clock=100MHz processes=P0
segment 2 clock=100MHz processes=P1
`
	doc, err := segbus.ParseDSL(strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		panic(ds)
	}
	est, err := segbus.Estimate(doc.Model, doc.Platform, segbus.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("packages delivered: %d\n", est.Report.Process(1).RecvPackages)
	// Output:
	// packages delivered: 2
}

// ExampleExplore ranks candidate configurations concurrently.
func ExampleExplore() {
	m := segbus.Pipeline(4, 144, 50)

	one := segbus.NewPlatform("one", 100*segbus.MHz, 36)
	one.AddSegment(100*segbus.MHz, 0, 1, 2, 3)
	two := segbus.NewPlatform("two", 100*segbus.MHz, 36)
	two.AddSegment(100*segbus.MHz, 0, 1)
	two.AddSegment(100*segbus.MHz, 2, 3)

	ranked, _ := segbus.Explore(m, []segbus.Candidate{
		{Label: "one", Platform: one},
		{Label: "two", Platform: two},
	}, 2)
	best, err := segbus.Best(ranked)
	if err != nil {
		panic(err)
	}
	// A serial pipeline gains nothing from a second segment; the
	// single-segment configuration wins.
	fmt.Println("winner:", best.Candidate.Label)
	// Output:
	// winner: one
}

// ExampleGenerateArbiters derives the arbiter grant programs from the
// schedule (the paper's future-work step).
func ExampleGenerateArbiters() {
	m := segbus.NewModel("tiny")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(segbus.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 5})

	p := segbus.NewPlatform("tiny-2seg", 100*segbus.MHz, 36)
	p.AddSegment(100*segbus.MHz, 0, 1)
	p.AddSegment(100*segbus.MHz, 2)

	prog, err := segbus.GenerateArbiters(m, p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("CA connection slots: %d\n", len(prog.CA))
	fmt.Printf("SA1 grant slots: %d\n", len(prog.SAs[0].Grants))
	// Output:
	// CA connection slots: 1
	// SA1 grant slots: 2
}

// ExampleRepeat estimates the steady state over several frames.
func ExampleRepeat() {
	m := segbus.NewModel("frame")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 100})

	frames, err := segbus.Repeat(m, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("flows in 4 frames: %d\n", frames.NumFlows())
	// Output:
	// flows in 4 frames: 4
}

// ExampleSweepPackageSizes produces the package-size sensitivity curve
// of a configuration.
func ExampleSweepPackageSizes() {
	m := segbus.NewModel("sweep-demo")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 288, Order: 1, Ticks: 10})
	m.SetNominalPackageSize(36)
	p := segbus.NewPlatform("demo", 100*segbus.MHz, 36)
	p.HeaderTicks = 20
	p.AddSegment(100*segbus.MHz, 0)
	p.AddSegment(100*segbus.MHz, 1)

	curve := segbus.SweepPackageSizes(m, p, []int{36, 72, 144})
	for _, pt := range curve.Points {
		if pt.Err != nil {
			panic(pt.Err)
		}
	}
	// Fewer packages mean fewer per-package header costs: the curve
	// falls as packages grow.
	fmt.Println(curve.Points[0].ExecPs > curve.Points[1].ExecPs &&
		curve.Points[1].ExecPs > curve.Points[2].ExecPs)
	// Output:
	// true
}
