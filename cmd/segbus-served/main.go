// segbus-served is the long-lived estimation service: the same
// pipeline segbus-emu runs once per invocation (parse schemes →
// preflight → emulate → report), kept hot behind HTTP so a
// design-space exploration can probe many candidates cheaply.
// Repeated probes are answered from a content-addressed result cache;
// concurrency is bounded by a worker pool with queue-full
// backpressure (429) and per-request deadlines (504); SIGTERM/SIGINT
// trigger a graceful drain.
//
// Usage:
//
//	segbus-served -addr :8080 [-workers 8] [-queue 16] [-cache 1024]
//	              [-cache-shards 8] [-max-batch 64]
//	              [-timeout 30s] [-drain-timeout 10s]
//	              [-trace-sample 0] [-trace-seed 1]
//	              [-trace-ring 256] [-trace-slowest 8]
//
// Endpoints:
//
//	POST /estimate  {"psdf": "<scheme>", "psm": "<scheme>",
//	                 "package_size": 36, "policy": "fifo", ...}
//	                → the versioned report JSON of segbus-emu
//	                  -report-json, byte-identical; X-Segbus-Cache
//	                  says hit, miss or coalesced.
//	POST /estimate/batch
//	                {"items": [<estimate request>, ...]}
//	                → 200 envelope with per-item results: items are
//	                  deduplicated by content fingerprint, fanned out
//	                  through the worker pool, and each carries its
//	                  own status/SB9xx code plus the verbatim report
//	                  bytes — one bad item never fails its siblings.
//	GET  /healthz   → 200 while serving, 503 while draining.
//	GET  /metrics   → Prometheus text exposition (requests, latency,
//	                  cache hits/misses per shard, coalesced and batch
//	                  counters, queue rejections, ...); latency buckets
//	                  carry the last traced request's id as an
//	                  OpenMetrics-style exemplar.
//	GET  /debug/requests
//	                → the trace flight recorder (schema
//	                  segbus/reqtrace/v1): the last ?n=K sampled
//	                  request breakdowns plus the slowest ones seen;
//	                  ?trace=<id> returns one breakdown,
//	                  &format=perfetto renders it for ui.perfetto.dev.
//
// Request tracing: a request whose W3C `traceparent` header has the
// sampled flag is always traced (its stage breakdown lands in
// /debug/requests and the response carries X-Segbus-Trace and a
// Traceparent echo); -trace-sample N additionally head-samples every
// Nth estimate. -trace-sample -1 disables tracing entirely.
//
// Like every segbus tool, the shared diagnostics flags -version,
// -cpuprofile and -memprofile are available.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"segbus/internal/obs"
	"segbus/internal/obs/profflag"
	"segbus/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-served:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until shutdown. ready, when
// non-nil, receives the bound address once the listener is up (tests
// pass -addr 127.0.0.1:0 and read the actual port from it).
func run(args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("segbus-served", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent emulations (0: one per CPU)")
	queue := fs.Int("queue", -1, "admitted requests beyond the running ones before 429s (-1: twice the workers)")
	cacheEntries := fs.Int("cache", 1024, "result-cache entries (0: disable caching)")
	cacheShards := fs.Int("cache-shards", 0, "result-cache shards, rounded up to a power of two (0: default of 8; 1: single global LRU)")
	maxBatch := fs.Int("max-batch", 0, "items accepted per /estimate/batch request (0: default of 64)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included (0: none)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	traceSample := fs.Int("trace-sample", 0, "trace one in N estimate requests (0: only traceparent-forced requests; -1: disable tracing)")
	traceSeed := fs.Uint64("trace-seed", 1, "seed for deterministic trace ids")
	traceRing := fs.Int("trace-ring", 0, "sampled traces kept in the /debug/requests ring (0: default of 256)")
	traceSlowest := fs.Int("trace-slowest", 0, "slowest traces tracked in /debug/requests (0: default of 8)")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	reg := obs.NewRegistry()
	s := serve.New(serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheEntries:   *cacheEntries,
		CacheShards:    *cacheShards,
		MaxBatchItems:  *maxBatch,
		RequestTimeout: *timeout,
		Registry:       reg,
		TraceSample:    *traceSample,
		TraceSeed:      *traceSeed,
		TraceRing:      *traceRing,
		TraceSlowest:   *traceSlowest,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "segbus-served: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: stop admitting (healthz flips to 503, estimates
	// shed with SB905), wait for in-flight emulations, then close the
	// listener and idle connections.
	fmt.Fprintln(stdout, "segbus-served: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := s.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	if !drained {
		return fmt.Errorf("drain timed out after %s with requests in flight", *drainTimeout)
	}
	fmt.Fprintln(stdout, "segbus-served: drained, bye")
	return nil
}
