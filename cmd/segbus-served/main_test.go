package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "segbus") {
		t.Errorf("version output %q", out.String())
	}
}

func TestBadAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "256.256.256.256:http"}, &out, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestServeEstimateAndGracefulShutdown boots the real binary
// lifecycle on a loopback port, serves one cold and one cached
// estimate, then drains it with SIGTERM — the signal path operators
// will use.
func TestServeEstimateAndGracefulShutdown(t *testing.T) {
	psdfXML, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "mp3-psdf.xsd"))
	if err != nil {
		t.Fatal(err)
	}
	psmXML, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "mp3-psm.xsd"))
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-cache", "8"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v\n%s", err, out.String())
	}
	base := "http://" + addr

	body, err := json.Marshal(map[string]string{"psdf": string(psdfXML), "psm": string(psmXML)})
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, got)
		}
		if state := resp.Header.Get("X-Segbus-Cache"); state != wantCache {
			t.Errorf("request %d: cache state %q, want %q", i, state, wantCache)
		}
		if i == 0 {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Error("cached response differs from the cold one")
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The repeat was byte-identical, so it hit the raw-request index
	// in front of the canonical cache.
	if !strings.Contains(string(metrics), "segbus_served_raw_index_hits_total 1") {
		t.Errorf("metrics missing the raw-index hit:\n%s", metrics)
	}

	// The operator's shutdown path: SIGTERM → drain → clean exit.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("missing drain banner:\n%s", out.String())
	}
}
