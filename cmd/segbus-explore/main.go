// segbus-explore searches a configuration space for Pareto-optimal
// platforms: it enumerates segment counts × placement strategies ×
// package sizes × protocol overheads over one application model,
// prunes candidates whose analytic latency/energy lower bounds are
// already dominated by an emulated point, and emulates the rest on a
// deterministic work-stealing pool. The latency-vs-energy Pareto
// front lands on stdout, byte-identical for every -workers value.
//
// Usage:
//
//	segbus-explore -app mp3 -segments 1,2,3,4 -sizes 9,18,36,72
//	segbus-explore -model design.sbd -spec space.json -workers 8 -json out.json
//	segbus-explore -app mp3 -reference -csv front.csv -timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"segbus/internal/apps"
	"segbus/internal/dsl"
	"segbus/internal/explore"
	"segbus/internal/obs"
	"segbus/internal/obs/profflag"
	"segbus/internal/psdf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-explore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-explore", flag.ContinueOnError)
	app := fs.String("app", "", "built-in application model: mp3")
	modelPath := fs.String("model", "", "textual model description (.sbd); its platform section is ignored — the space supplies platforms")
	specPath := fs.String("spec", "", "JSON space specification file (see explore.Space)")
	reference := fs.Bool("reference", false, "use the built-in 10240-candidate MP3 reference space")
	segments := fs.String("segments", "", "comma-separated segment counts")
	mappings := fs.String("mappings", "", "comma-separated placement strategies: solve, round-robin")
	sizes := fs.String("sizes", "", "comma-separated package sizes")
	headers := fs.String("headers", "", "comma-separated protocol header ticks")
	cahops := fs.String("cahops", "", "comma-separated CA hop set-up ticks")
	clocks := fs.String("clocks", "", "comma-separated segment clocks in MHz (cycled over segments)")
	caClock := fs.Int("ca-clock", 0, "CA clock in MHz (0: default 111)")
	workers := fs.Int("workers", 0, "concurrent workers (0: GOMAXPROCS); changes wall-clock only, never output")
	seed := fs.Int64("seed", 0, "work-stealing schedule seed (schedule reproducibility; results are seed independent)")
	wave := fs.Int("wave", 0, "candidates emulated between prune passes (0: default)")
	noPrune := fs.Bool("no-prune", false, "disable bounds pruning and emulate every candidate")
	jsonPath := fs.String("json", "", "write the full deterministic JSON report to this file")
	csvPath := fs.String("csv", "", "write the Pareto front as CSV to this file")
	timings := fs.Bool("timings", false, "print per-stage wall-clock totals to stderr")
	heartbeat := fs.Duration("heartbeat", 0, "print a progress line to stderr at this interval (0: off)")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	m, err := loadModel(*app, *modelPath)
	if err != nil {
		return err
	}
	space, err := buildSpace(*specPath, *reference, axisFlags{
		segments: *segments, mappings: *mappings, sizes: *sizes,
		headers: *headers, cahops: *cahops, clocks: *clocks, caClock: *caClock,
	})
	if err != nil {
		return err
	}

	opts := explore.Options{Workers: *workers, Seed: *seed, WaveSize: *wave, NoPrune: *noPrune}
	if *heartbeat > 0 {
		opts.Heartbeat = obs.NewHeartbeat(os.Stderr, "candidate", *heartbeat, space.Size())
	}
	res, err := explore.Run(m, space, opts)
	if err != nil {
		return err
	}

	fmt.Fprint(stdout, res.Summary())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, res.FrontTable())
	if *timings {
		fmt.Fprint(os.Stderr, res.TimingSummary())
	}
	if *jsonPath != "" {
		js, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *jsonPath)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *csvPath)
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d candidates failed; see the JSON report for details", res.Errors)
	}
	return nil
}

func loadModel(app, modelPath string) (*psdf.Model, error) {
	switch {
	case app != "" && modelPath != "":
		return nil, fmt.Errorf("-app and -model are mutually exclusive")
	case app == "mp3":
		return apps.MP3Model(), nil
	case app != "":
		return nil, fmt.Errorf("unknown -app %q (want mp3)", app)
	case modelPath != "":
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		doc, err := dsl.Parse(f)
		if err != nil {
			return nil, err
		}
		if diags := doc.Validate(); diags.HasErrors() {
			return nil, fmt.Errorf("model validation failed:\n%s", diags)
		}
		return doc.Model, nil
	default:
		return nil, fmt.Errorf("one of -app or -model is required")
	}
}

type axisFlags struct {
	segments, mappings, sizes, headers, cahops, clocks string
	caClock                                            int
}

func (a axisFlags) any() bool {
	return a.segments != "" || a.mappings != "" || a.sizes != "" ||
		a.headers != "" || a.cahops != "" || a.clocks != "" || a.caClock != 0
}

// buildSpace resolves the three space sources in precedence order:
// -spec file, -reference, axis flags. Axis flags may refine a spec or
// the reference space; a space built from flags alone needs at least
// -segments and -sizes.
func buildSpace(specPath string, reference bool, ax axisFlags) (*explore.Space, error) {
	var space explore.Space
	switch {
	case specPath != "" && reference:
		return nil, fmt.Errorf("-spec and -reference are mutually exclusive")
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&space); err != nil {
			return nil, fmt.Errorf("%s: %w", specPath, err)
		}
	case reference:
		space = *explore.ReferenceMP3Space()
	default:
		if !ax.any() {
			return nil, fmt.Errorf("no space: pass -spec, -reference, or axis flags (-segments, -sizes, ...)")
		}
	}
	if err := applyAxes(&space, ax); err != nil {
		return nil, err
	}
	return &space, nil
}

func applyAxes(space *explore.Space, ax axisFlags) error {
	setInts := func(dst *[]int, arg, name string) error {
		if arg == "" {
			return nil
		}
		var out []int
		for _, p := range strings.Split(arg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad %s value %q", name, p)
			}
			out = append(out, n)
		}
		*dst = out
		return nil
	}
	if err := setInts(&space.Segments, ax.segments, "-segments"); err != nil {
		return err
	}
	if err := setInts(&space.PackageSizes, ax.sizes, "-sizes"); err != nil {
		return err
	}
	if err := setInts(&space.HeaderTicks, ax.headers, "-headers"); err != nil {
		return err
	}
	if err := setInts(&space.CAHopTicks, ax.cahops, "-cahops"); err != nil {
		return err
	}
	if err := setInts(&space.SegmentClocksMHz, ax.clocks, "-clocks"); err != nil {
		return err
	}
	if ax.mappings != "" {
		var out []string
		for _, p := range strings.Split(ax.mappings, ",") {
			out = append(out, strings.TrimSpace(p))
		}
		space.Mappings = out
	}
	if ax.caClock != 0 {
		space.CAClockMHz = ax.caClock
	}
	return nil
}
