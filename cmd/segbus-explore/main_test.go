package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "../../testdata/mp3.sbd"

func TestRunAxisFlags(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	csvPath := filepath.Join(t.TempDir(), "front.csv")
	var out strings.Builder
	err := run([]string{"-app", "mp3", "-segments", "1,2,3", "-sizes", "9,36",
		"-headers", "0,100", "-wave", "4", "-json", jsonPath, "-csv", csvPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "12 candidates") {
		t.Errorf("summary missing candidate count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Pareto front") {
		t.Errorf("summary missing front:\n%s", out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema    string `json:"schema"`
		Generated int    `json:"generated"`
		Pruned    int    `json:"pruned"`
		Emulated  int    `json:"emulated"`
		Front     []struct {
			Label  string `json:"label"`
			ExecPs int64  `json:"execPs"`
		} `json:"front"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema == "" || rep.Generated != 12 || rep.Pruned+rep.Emulated != 12 {
		t.Errorf("report: %+v", rep)
	}
	if len(rep.Front) == 0 || rep.Front[0].ExecPs == 0 {
		t.Errorf("front empty or unpopulated: %+v", rep.Front)
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 1+len(rep.Front) {
		t.Errorf("CSV rows = %d, want header + %d", len(lines), len(rep.Front))
	}
}

func TestRunModelFile(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-model", fixture, "-segments", "2", "-sizes", "36",
		"-mappings", "solve,round-robin"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 candidates") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunSpecFile(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "space.json")
	body := `{"name": "tiny", "segments": [1, 2], "package_sizes": [18, 36]}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-app", "mp3", "-spec", spec}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "space tiny: 4 candidates") {
		t.Errorf("output:\n%s", out.String())
	}
	// Axis flags refine the spec.
	out.Reset()
	if err := run([]string{"-app", "mp3", "-spec", spec, "-sizes", "36"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "space tiny: 2 candidates") {
		t.Errorf("refined output:\n%s", out.String())
	}
}

// TestRunDeterministicAcrossWorkers is the CLI-level byte-stability
// check the check.sh gate scripts: stdout must not depend on -workers
// or -seed.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		{"-app", "mp3", "-segments", "1,2,3", "-sizes", "9,18,36", "-cahops", "0,100", "-wave", "4", "-workers", "1"},
		{"-app", "mp3", "-segments", "1,2,3", "-sizes", "9,18,36", "-cahops", "0,100", "-wave", "4", "-workers", "8"},
		{"-app", "mp3", "-segments", "1,2,3", "-sizes", "9,18,36", "-cahops", "0,100", "-wave", "4", "-workers", "3", "-seed", "99"},
	} {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatalf("stdout varies with workers/seed:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no model accepted")
	}
	if err := run([]string{"-app", "mp3"}, &out); err == nil {
		t.Error("no space accepted")
	}
	if err := run([]string{"-app", "vorbis", "-segments", "1", "-sizes", "36"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-app", "mp3", "-model", fixture, "-segments", "1", "-sizes", "36"}, &out); err == nil {
		t.Error("-app plus -model accepted")
	}
	if err := run([]string{"-app", "mp3", "-segments", "one", "-sizes", "36"}, &out); err == nil {
		t.Error("bad segment value accepted")
	}
	if err := run([]string{"-app", "mp3", "-segments", "1", "-sizes", "36", "-mappings", "magic"}, &out); err == nil {
		t.Error("bad mapping accepted")
	}
	spec := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(spec, []byte(`{"segmentz": [1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-app", "mp3", "-spec", spec}, &out); err == nil {
		t.Error("unknown spec field accepted")
	}
	if err := run([]string{"-app", "mp3", "-spec", spec, "-reference"}, &out); err == nil {
		t.Error("-spec plus -reference accepted")
	}
}
