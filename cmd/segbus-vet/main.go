// segbus-vet statically analyzes a SegBus model pair before any
// emulation is spent on it: structural well-formedness, liveness of
// the extracted schedule, static performance bounds, and congestion
// lints over the planned border-unit traffic. Findings carry stable
// SB0xx codes (see -codes) for CI suppression lists.
//
// Usage:
//
//	segbus-vet -model design.sbd [-json] [-strict] [-s 36]
//	segbus-vet -psdf gen/mp3-psdf.xsd -psm gen/mp3-psm.xsd
//
// Exit status: 0 when the model is clean (or carries only warnings),
// 1 when errors are found (or warnings with -strict), 2 on usage or
// I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"segbus/internal/analyze"
	"segbus/internal/dsl"
	"segbus/internal/obs/profflag"
	"segbus/internal/schema"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("segbus-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "textual model description (.sbd)")
	psdfPath := fs.String("psdf", "", "PSDF XML scheme (pairs with -psm)")
	psmPath := fs.String("psm", "", "PSM XML scheme (pairs with -psdf)")
	pkg := fs.Int("s", 0, "package size override (default: the model's)")
	jsonOut := fs.Bool("json", false, "print the report as versioned JSON")
	strict := fs.Bool("strict", false, "exit non-zero on warnings, not only on errors")
	codes := fs.Bool("codes", false, "print the diagnostic code table and exit")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if pf.PrintVersion(stdout) {
		return exitClean
	}
	if err := pf.Start(); err != nil {
		fmt.Fprintln(stderr, "segbus-vet:", err)
		return exitUsage
	}
	defer pf.Stop(stderr)

	if *codes {
		printCodes(stdout)
		return exitClean
	}

	doc, code := load(*modelPath, *psdfPath, *psmPath, fs, stderr)
	if doc == nil {
		return code
	}
	if *pkg > 0 && doc.Platform != nil {
		doc.Platform.PackageSize = *pkg
	}

	var opts analyze.Options
	if *analyzers != "" {
		as, err := analyze.ByName(strings.Split(*analyzers, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return exitUsage
		}
		opts.Analyzers = as
	}

	res := analyze.Run(doc, opts)
	if *jsonOut {
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return exitUsage
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		fmt.Fprint(stdout, res)
	}
	if res.HasErrors() || (*strict && res.HasWarnings()) {
		return exitFindings
	}
	return exitClean
}

// load reads the model pair from either input form. On failure it
// prints to stderr and returns a nil document with the exit code; XML
// pairs whose embedded validation fails surface every coded finding,
// not just the first.
func load(modelPath, psdfPath, psmPath string, fs *flag.FlagSet, stderr io.Writer) (*dsl.Document, int) {
	switch {
	case modelPath != "" && (psdfPath != "" || psmPath != ""):
		fmt.Fprintln(stderr, "segbus-vet: -model and -psdf/-psm are mutually exclusive")
		return nil, exitUsage
	case modelPath != "":
		f, err := os.Open(modelPath)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return nil, exitUsage
		}
		defer f.Close()
		doc, err := dsl.Parse(f)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return nil, exitUsage
		}
		return doc, exitClean
	case psdfPath != "" && psmPath != "":
		doc := &dsl.Document{}
		if !parseXML(psdfPath, stderr, func(data []byte) error {
			m, err := schema.ParsePSDF(data)
			doc.Model = m
			return err
		}) {
			return nil, exitFindings
		}
		if !parseXML(psmPath, stderr, func(data []byte) error {
			p, err := schema.ParsePSM(data)
			doc.Platform = p
			return err
		}) {
			return nil, exitFindings
		}
		return doc, exitClean
	default:
		fs.Usage()
		fmt.Fprintln(stderr, "segbus-vet: -model or a -psdf/-psm pair is required")
		return nil, exitUsage
	}
}

// parseXML runs one schema importer, rendering aggregated validation
// diagnostics when the scheme parses but describes a broken model.
func parseXML(path string, stderr io.Writer, parse func([]byte) error) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "segbus-vet:", err)
		return false
	}
	if err := parse(data); err != nil {
		if ds, ok := analyze.FromError(err); ok {
			for _, d := range ds {
				fmt.Fprintf(stderr, "%s: %s\n", path, d)
			}
			fmt.Fprintf(stderr, "segbus-vet: %s: %d validation finding(s)\n", path, len(ds))
		} else {
			fmt.Fprintln(stderr, "segbus-vet:", err)
		}
		return false
	}
	return true
}

func printCodes(w io.Writer) {
	fmt.Fprintln(w, "stable diagnostic codes:")
	for _, ci := range analyze.CodeTable() {
		fmt.Fprintf(w, "%s %-8s %s\n", ci.Code, ci.Severity, ci.Summary)
	}
}
