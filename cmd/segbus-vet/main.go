// segbus-vet statically analyzes a SegBus model pair before any
// emulation is spent on it: structural well-formedness, liveness of
// the extracted schedule, static performance bounds, and congestion
// lints over the planned border-unit traffic. Findings carry stable
// SB0xx codes (see -codes) for CI suppression lists.
//
// Usage:
//
//	segbus-vet -model design.sbd [-json] [-strict] [-s 36]
//	segbus-vet -model design.sbd -why SB050 [-repro repro.sbd]
//	segbus-vet -psdf gen/mp3-psdf.xsd -psm gen/mp3-psm.xsd
//
// Reachability findings (SB050) carry a minimal counterexample: -why
// prints the action trace after the report, and -repro exports a
// replayable .sbd (the model with the trace appended as comments).
//
// Exit status: 0 when the model is clean (or carries only warnings),
// 1 when errors are found (or warnings with -strict), 2 on usage or
// I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"segbus/internal/analyze"
	"segbus/internal/dsl"
	"segbus/internal/obs/profflag"
	"segbus/internal/schema"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("segbus-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "textual model description (.sbd)")
	psdfPath := fs.String("psdf", "", "PSDF XML scheme (pairs with -psm)")
	psmPath := fs.String("psm", "", "PSM XML scheme (pairs with -psdf)")
	pkg := fs.Int("s", 0, "package size override (default: the model's)")
	jsonOut := fs.Bool("json", false, "print the report as versioned JSON")
	strict := fs.Bool("strict", false, "exit non-zero on warnings, not only on errors")
	codes := fs.Bool("codes", false, "print the diagnostic code table and exit")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	why := fs.String("why", "", "print counterexample detail for findings with this code (text mode)")
	repro := fs.String("repro", "", "write a replayable .sbd reproducer with the counterexample trace to this path")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if pf.PrintVersion(stdout) {
		return exitClean
	}
	if err := pf.Start(); err != nil {
		fmt.Fprintln(stderr, "segbus-vet:", err)
		return exitUsage
	}
	defer pf.Stop(stderr)

	if *codes {
		printCodes(stdout)
		return exitClean
	}

	doc, code := load(*modelPath, *psdfPath, *psmPath, fs, stderr)
	if doc == nil {
		return code
	}
	if *pkg > 0 && doc.Platform != nil {
		doc.Platform.PackageSize = *pkg
	}

	var opts analyze.Options
	if *analyzers != "" {
		as, err := analyze.ByName(strings.Split(*analyzers, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return exitUsage
		}
		opts.Analyzers = as
	}

	res := analyze.Run(doc, opts)
	if *jsonOut {
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return exitUsage
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		fmt.Fprint(stdout, res)
		if *why != "" {
			printWhy(stdout, res, *why)
		}
	}
	if *repro != "" {
		if err := writeRepro(*repro, doc, res); err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return exitUsage
		}
	}
	if res.HasErrors() || (*strict && res.HasWarnings()) {
		return exitFindings
	}
	return exitClean
}

// printWhy expands the findings carrying the given code: the
// counterexample trace for reachability findings, or the code-table
// summary when the report has no such finding.
func printWhy(w io.Writer, res *analyze.Result, code string) {
	found := false
	for _, d := range res.Diagnostics {
		if d.Code != code {
			continue
		}
		found = true
		fmt.Fprintf(w, "\n%s %s: %s\n", code, d.Element, d.Message)
		if len(d.Trace) == 0 {
			fmt.Fprintln(w, "(no counterexample trace attached)")
			continue
		}
		fmt.Fprintln(w, "counterexample:")
		for i, line := range d.Trace {
			fmt.Fprintf(w, "%4d. %s\n", i+1, line)
		}
	}
	if found {
		return
	}
	for _, ci := range analyze.CodeTable() {
		if ci.Code == code {
			fmt.Fprintf(w, "\n%s (%s): %s\nno findings with this code in the report above\n",
				ci.Code, ci.Severity, ci.Summary)
			return
		}
	}
	fmt.Fprintf(w, "\nunknown diagnostic code %s (see -codes)\n", code)
}

// writeRepro exports a replayable reproducer: the document itself with
// the first attached counterexample trace appended as '#' comments, so
// the file still parses as the original model.
func writeRepro(path string, doc *dsl.Document, res *analyze.Result) error {
	var trace []string
	var code string
	for _, d := range res.Diagnostics {
		if len(d.Trace) > 0 {
			trace, code = d.Trace, d.Code
			break
		}
	}
	if trace == nil {
		return fmt.Errorf("-repro: no finding with a counterexample trace to export")
	}
	var b strings.Builder
	b.WriteString(doc.Print())
	fmt.Fprintf(&b, "\n# %s counterexample: the schedule below reaches a stuck state.\n", code)
	for i, line := range trace {
		fmt.Fprintf(&b, "# %4d. %s\n", i+1, line)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// load reads the model pair from either input form. On failure it
// prints to stderr and returns a nil document with the exit code; XML
// pairs whose embedded validation fails surface every coded finding,
// not just the first.
func load(modelPath, psdfPath, psmPath string, fs *flag.FlagSet, stderr io.Writer) (*dsl.Document, int) {
	switch {
	case modelPath != "" && (psdfPath != "" || psmPath != ""):
		fmt.Fprintln(stderr, "segbus-vet: -model and -psdf/-psm are mutually exclusive")
		return nil, exitUsage
	case modelPath != "":
		f, err := os.Open(modelPath)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return nil, exitUsage
		}
		defer f.Close()
		doc, err := dsl.Parse(f)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-vet:", err)
			return nil, exitUsage
		}
		return doc, exitClean
	case psdfPath != "" && psmPath != "":
		doc := &dsl.Document{}
		if !parseXML(psdfPath, stderr, func(data []byte) error {
			m, err := schema.ParsePSDF(data)
			doc.Model = m
			return err
		}) {
			return nil, exitFindings
		}
		if !parseXML(psmPath, stderr, func(data []byte) error {
			p, err := schema.ParsePSM(data)
			doc.Platform = p
			return err
		}) {
			return nil, exitFindings
		}
		return doc, exitClean
	default:
		fs.Usage()
		fmt.Fprintln(stderr, "segbus-vet: -model or a -psdf/-psm pair is required")
		return nil, exitUsage
	}
}

// parseXML runs one schema importer, rendering aggregated validation
// diagnostics when the scheme parses but describes a broken model.
func parseXML(path string, stderr io.Writer, parse func([]byte) error) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "segbus-vet:", err)
		return false
	}
	if err := parse(data); err != nil {
		if ds, ok := analyze.FromError(err); ok {
			for _, d := range ds {
				fmt.Fprintf(stderr, "%s: %s\n", path, d)
			}
			fmt.Fprintf(stderr, "segbus-vet: %s: %d validation finding(s)\n", path, len(ds))
		} else {
			fmt.Fprintln(stderr, "segbus-vet:", err)
		}
		return false
	}
	return true
}

func printCodes(w io.Writer) {
	fmt.Fprintln(w, "stable diagnostic codes:")
	for _, ci := range analyze.CodeTable() {
		fmt.Fprintf(w, "%s %-8s %s\n", ci.Code, ci.Severity, ci.Summary)
	}
}
