package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const scenarioDir = "../../testdata/scenarios"

// TestScenarioGoldens locks the vet report for every checked-in
// scenario byte-for-byte. Regenerate after a deliberate analyzer or
// rendering change with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/segbus-vet
func TestScenarioGoldens(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.sbd"))
	if err != nil {
		t.Fatal(err)
	}
	// Deadlocking scenarios live in a subdirectory so the conform
	// corpus loader (top-level glob) never seeds its generator with
	// models the oracles would reject.
	deadlocks, err := filepath.Glob(filepath.Join(scenarioDir, "deadlock", "*.sbd"))
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, deadlocks...)
	if len(paths) == 0 {
		t.Fatal("no scenarios found")
	}
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".sbd")
		if filepath.Base(filepath.Dir(path)) == "deadlock" {
			name = "deadlock-" + name
		}
		t.Run(name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{"-model", path}, &out, &errOut)
			if code == exitUsage {
				t.Fatalf("vet failed: %s", errOut.String())
			}
			golden := filepath.Join(scenarioDir, "vet", name+".txt")
			if update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("vet report for %s diverged from golden.\n-- got --\n%s\n-- want --\n%s",
					name, out.String(), want)
			}
		})
	}
}

// TestMP3CongestionWarning pins the acceptance figure: on the paper's
// three-segment MP3 allocation, vet must flag the BU12 imbalance (32
// crossing packages against BU23's 1) under a stable code.
func TestMP3CongestionWarning(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-model", "../../testdata/mp3.sbd"}, &out, &errOut)
	if code != exitClean {
		t.Fatalf("exit %d (warnings are not errors without -strict): %s", code, errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "warning SB301 BU12") {
		t.Errorf("missing SB301 warning:\n%s", report)
	}
	if !strings.Contains(report, "BU12 carries 32 packages") || !strings.Contains(report, "BU23 carries 1") {
		t.Errorf("missing the 32-vs-1 crossing figure:\n%s", report)
	}

	out.Reset()
	if code := run([]string{"-model", "../../testdata/mp3.sbd", "-strict"}, &out, &errOut); code != exitFindings {
		t.Errorf("-strict exit = %d, want %d", code, exitFindings)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-model", "../../testdata/mp3.sbd", "-json"}, &out, &errOut); code != exitClean {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var decoded struct {
		Version     int    `json:"version"`
		Model       string `json:"model"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
		Bounds map[string]interface{} `json:"bounds"`
	}
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Version != 1 || decoded.Model != "mp3-decoder" || decoded.Bounds == nil {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestPackageSizeOverride(t *testing.T) {
	var a, b, errOut bytes.Buffer
	run([]string{"-model", "../../testdata/mp3.sbd"}, &a, &errOut)
	run([]string{"-model", "../../testdata/mp3.sbd", "-s", "18"}, &b, &errOut)
	if a.String() == b.String() {
		t.Error("-s 18 did not change the report")
	}
	if !strings.Contains(b.String(), "SB041") {
		t.Errorf("-s 18 should trigger the package-size mismatch warning:\n%s", b.String())
	}
}

func TestAnalyzerSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-model", "../../testdata/mp3.sbd", "-analyzers", "structural,liveness"}, &out, &errOut)
	if code != exitClean {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "SB201") || strings.Contains(out.String(), "static performance bounds") {
		t.Errorf("bounds ran despite subset:\n%s", out.String())
	}
	if code := run([]string{"-model", "../../testdata/mp3.sbd", "-analyzers", "nonesuch"}, &out, &errOut); code != exitUsage {
		t.Errorf("unknown analyzer exit = %d, want %d", code, exitUsage)
	}
}

func TestCodesListing(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-codes"}, &out, &errOut); code != exitClean {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"SB001", "SB101", "SB201", "SB301"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("code table missing %s:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != exitUsage {
		t.Errorf("no-args exit = %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-model", "a.sbd", "-psdf", "b.xsd"}, &out, &errOut); code != exitUsage {
		t.Errorf("conflicting inputs exit = %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-model", "does-not-exist.sbd"}, &out, &errOut); code != exitUsage {
		t.Errorf("missing file exit = %d, want %d", code, exitUsage)
	}
}

// TestWhyAndRepro exercises the counterexample surface: -why expands
// the SB050 trace after the report, -repro writes a .sbd that still
// parses and re-diagnoses the same deadlock.
func TestWhyAndRepro(t *testing.T) {
	model := filepath.Join(scenarioDir, "deadlock", "starved-order.sbd")
	repro := filepath.Join(t.TempDir(), "repro.sbd")
	var out, errOut bytes.Buffer
	if code := run([]string{"-model", model, "-why", "SB050", "-repro", repro}, &out, &errOut); code != exitFindings {
		t.Fatalf("exit = %d, want %d: %s", code, exitFindings, errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "error SB050") || !strings.Contains(report, "counterexample:") {
		t.Errorf("missing expanded counterexample:\n%s", report)
	}
	if !strings.Contains(report, "delivers package") {
		t.Errorf("trace lacks delivery actions:\n%s", report)
	}

	data, err := os.ReadFile(repro)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# SB050 counterexample") {
		t.Errorf("reproducer lacks the trace comment block:\n%s", data)
	}
	out.Reset()
	if code := run([]string{"-model", repro}, &out, &errOut); code != exitFindings {
		t.Fatalf("reproducer vet exit = %d, want %d: %s", code, exitFindings, errOut.String())
	}
	if !strings.Contains(out.String(), "error SB050") {
		t.Errorf("reproducer does not re-diagnose the deadlock:\n%s", out.String())
	}

	// -why on a clean model falls back to the code-table summary.
	out.Reset()
	if code := run([]string{"-model", "../../testdata/mp3.sbd", "-why", "SB050"}, &out, &errOut); code != exitClean {
		t.Fatalf("clean-model exit = %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no findings with this code") {
		t.Errorf("missing no-findings fallback:\n%s", out.String())
	}

	// -repro with nothing to export is a usage error.
	if code := run([]string{"-model", "../../testdata/mp3.sbd", "-repro", repro}, &out, &errOut); code != exitUsage {
		t.Errorf("-repro without a trace exit = %d, want %d", code, exitUsage)
	}
}

// TestErrorModelExitsNonZero feeds a model with a structural error
// through a temp file and expects exit 1 with the coded finding.
func TestErrorModelExitsNonZero(t *testing.T) {
	src := `application broken
flow P0 -> P0 items=36 order=1 ticks=5
`
	path := filepath.Join(t.TempDir(), "broken.sbd")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-model", path}, &out, &errOut); code != exitFindings {
		t.Fatalf("exit = %d, want %d\n%s", code, exitFindings, out.String())
	}
	if !strings.Contains(out.String(), "error SB006 P0->P0") {
		t.Errorf("missing coded self-loop finding:\n%s", out.String())
	}
}
