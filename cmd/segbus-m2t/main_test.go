package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "../../testdata/mp3.sbd"

func TestRunGeneratesSchemes(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mp3-decoder-psdf.xsd", "mp3-decoder-psm.xsd"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("output: %q", out.String())
	}
}

func TestRunCustomName(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-out", dir, "-name", "custom"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "custom-psdf.xsd")); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run([]string{"-model", "does-not-exist.sbd"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunRejectsInvalidModel(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sbd")
	// Platform misses P1.
	text := "flow P0 -> P1 items=36 order=1 ticks=0\nplatform p\nca-clock 100MHz\npackage-size 36\nsegment 1 clock=90MHz processes=P0\n"
	if err := os.WriteFile(bad, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-model", bad, "-out", dir}, &out); err == nil {
		t.Error("invalid model transformed")
	}
}

func TestRunCheckMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-check"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model ok: 15 processes, 20 flows, 3 segments") {
		t.Errorf("check output: %q", out.String())
	}
}
