// segbus-m2t applies the model-to-text transformation of the SegBus
// design flow: it reads a textual model description (the DSL stand-in
// for the graphical modeling tool), validates it, and writes the PSDF
// and PSM XML schemes the emulator consumes.
//
// Usage:
//
//	segbus-m2t -model design.sbd -out gen/
//
// The output directory receives <name>-psdf.xsd and, when the
// description contains a platform section, <name>-psm.xsd.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"segbus/internal/dsl"
	"segbus/internal/m2t"
	"segbus/internal/obs/profflag"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-m2t:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-m2t", flag.ContinueOnError)
	modelPath := fs.String("model", "", "textual model description file (required)")
	outDir := fs.String("out", ".", "directory for the generated XML schemes")
	name := fs.String("name", "", "base name of the generated files (default: the application name)")
	check := fs.Bool("check", false, "validate the model description and exit without generating")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	if *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("-model is required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()

	doc, err := dsl.Parse(f)
	if err != nil {
		return err
	}
	diags := doc.Validate()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if diags.HasErrors() {
		errs := 0
		for _, d := range diags {
			if d.Severity == dsl.SeverityError {
				errs++
			}
		}
		return fmt.Errorf("model validation failed (%d error(s))", errs)
	}
	if *check {
		fmt.Fprintf(stdout, "model ok: %d processes, %d flows", doc.Model.NumProcesses(), doc.Model.NumFlows())
		if doc.Platform != nil {
			fmt.Fprintf(stdout, ", %d segments", doc.Platform.NumSegments())
		}
		fmt.Fprintln(stdout)
		return nil
	}

	base := *name
	if base == "" {
		base = doc.Model.Name()
	}
	if base == "" {
		base = "model"
	}

	psdfSet := m2t.NewPSDFSet(base+"-psdf", doc.Model, *outDir)
	path, err := psdfSet.Transform()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote", path)

	if doc.Platform != nil {
		psmSet := m2t.NewPSMSet(base+"-psm", doc.Platform, *outDir)
		path, err := psmSet.Transform()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
	}
	return nil
}
