package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSweepText(t *testing.T) {
	code, out, errOut := runCLI(t, "-n", "20", "-seed", "1", "-repros", t.TempDir())
	if code != exitOK {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "all oracles passed") {
		t.Errorf("missing pass banner:\n%s", out)
	}
	if !strings.Contains(out, "bounds") || !strings.Contains(out, "permute-ids") {
		t.Errorf("summary does not tally the oracle battery:\n%s", out)
	}
}

func TestSweepJSON(t *testing.T) {
	code, out, errOut := runCLI(t, "-n", "10", "-seed", "2", "-json", "-repros", t.TempDir())
	if code != exitOK {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	var sum struct {
		Version int                       `json:"version"`
		Seed    int64                     `json:"seed"`
		Cases   int                       `json:"cases"`
		Oracles map[string]map[string]int `json:"oracles"`
	}
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out)
	}
	if sum.Version != 1 || sum.Seed != 2 || sum.Cases != 10 {
		t.Errorf("summary fields = %+v", sum)
	}
	if _, ok := sum.Oracles["bounds"]; !ok {
		t.Errorf("JSON summary has no bounds tally:\n%s", out)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"bounds", "envelope", "determinism", "grow-segment", "shrink-package", "permute-ids"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list misses oracle %s:\n%s", name, out)
		}
	}
}

func TestReplay(t *testing.T) {
	src := `application replayed
process P0
process P1
flow P0 -> P1 items=8 order=1 ticks=4
platform replayed-plat
ca-clock 100MHz
package-size 4
segment 1 clock=100MHz processes=P0,P1
`
	path := filepath.Join(t.TempDir(), "case.sbd")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-replay", path)
	if code != exitOK {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "PASS bounds") {
		t.Errorf("replay output misses per-oracle verdicts:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "-bogus"); code != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-n", "1", "-oracles", "nope"); code != exitUsage {
		t.Errorf("unknown oracle: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-replay", "/nonexistent/x.sbd"); code != exitUsage {
		t.Errorf("missing replay file: exit %d, want %d", code, exitUsage)
	}
	// A missing corpus dir is an empty corpus, not an error: the sweep
	// simply runs fully generated.
	if code, _, _ := runCLI(t, "-n", "5", "-corpus", "/nonexistent-dir-xyz", "-repros", t.TempDir()); code != exitOK {
		t.Errorf("empty corpus sweep: exit %d, want %d", code, exitOK)
	}
}
