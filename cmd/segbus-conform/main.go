// segbus-conform is the differential conformance harness: it
// generates random well-formed (PSDF, PSM) model pairs (optionally
// seeded from a scenario corpus), runs every pair through the
// estimation model, the refined ground-truth model and the static
// bounds analyzer, and checks the oracle battery of internal/conform —
// the SB201 bound chain across both timing models, the paper's
// relative-error envelope, run-to-run determinism, and the metamorphic
// monotonicity properties. Failing cases are greedily shrunk to a
// minimal reproducer and persisted as plain .sbd files.
//
// Usage:
//
//	segbus-conform -n 1000 -seed 1 [-corpus testdata/scenarios] [-json]
//	segbus-conform -duration 30s -oracles bounds,envelope
//	segbus-conform -replay testdata/conform/repros/bounds-seed1-case7.sbd
//	segbus-conform -n 200 -emit-fuzz-corpus internal/analyze/testdata/fuzz/FuzzAnalyze
//
// Exit status: 0 when every oracle passed on every case, 1 when an
// oracle failed, 2 on usage or I/O problems.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"segbus/internal/conform"
	"segbus/internal/dsl"
	"segbus/internal/obs"
	"segbus/internal/obs/profflag"
)

const (
	exitOK       = 0
	exitFailures = 1
	exitUsage    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("segbus-conform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "root seed; the sweep is a pure function of it")
	n := fs.Int("n", 100, "number of cases to run (0: until -duration)")
	duration := fs.Duration("duration", 0, "wall-clock budget; stops early when reached")
	oracles := fs.String("oracles", "", "comma-separated oracle subset (default: all, see -list)")
	corpus := fs.String("corpus", "", "directory of .sbd descriptions to seed the generator with")
	repros := fs.String("repros", "testdata/conform/repros", "directory for shrunk reproducers ('' disables)")
	replay := fs.String("replay", "", "run the oracles on one .sbd file instead of generating")
	fuzzDir := fs.String("emit-fuzz-corpus", "", "write every generated case as a Go fuzz seed into this directory")
	jsonOut := fs.Bool("json", false, "print the summary as versioned JSON")
	list := fs.Bool("list", false, "print the oracle battery and exit")
	noShrink := fs.Bool("no-shrink", false, "report failures without shrinking them")
	verbose := fs.Bool("v", false, "log every case to stderr")
	heartbeat := fs.Duration("heartbeat", 0, "print a progress line (cases/s, failures, ETA) to stderr at this interval (0: off)")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if pf.PrintVersion(stdout) {
		return exitOK
	}
	if err := pf.Start(); err != nil {
		fmt.Fprintln(stderr, "segbus-conform:", err)
		return exitUsage
	}
	defer pf.Stop(stderr)

	if *list {
		for _, o := range conform.Oracles() {
			fmt.Fprintf(stdout, "%-14s %s\n", o.Name, o.Doc)
		}
		return exitOK
	}

	var names []string
	if *oracles != "" {
		names = strings.Split(*oracles, ",")
	}

	if *replay != "" {
		return replayFile(*replay, names, stdout, stderr)
	}

	cfg := conform.Config{
		Seed:          *seed,
		N:             *n,
		Duration:      *duration,
		Oracles:       names,
		ReproDir:      *repros,
		NoShrink:      *noShrink,
		FuzzCorpusDir: *fuzzDir,
	}
	if *verbose {
		cfg.Log = stderr
	}
	if *heartbeat > 0 {
		cfg.Heartbeat = obs.NewHeartbeat(stderr, "case", *heartbeat, *n)
	}
	if *corpus != "" {
		docs, err := conform.LoadCorpusDir(*corpus)
		if err != nil {
			fmt.Fprintln(stderr, "segbus-conform:", err)
			return exitUsage
		}
		cfg.Corpus = docs
	}

	sum, err := conform.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "segbus-conform:", err)
		return exitUsage
	}
	if err := printSummary(sum, *jsonOut, stdout); err != nil {
		fmt.Fprintln(stderr, "segbus-conform:", err)
		return exitUsage
	}
	if !sum.OK() {
		return exitFailures
	}
	return exitOK
}

// replayFile runs the oracle battery once on a stored model
// description — the triage loop for a shrunk reproducer.
func replayFile(path string, names []string, stdout, stderr io.Writer) int {
	oracles, err := conform.SelectOracles(names)
	if err != nil {
		fmt.Fprintln(stderr, "segbus-conform:", err)
		return exitUsage
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "segbus-conform:", err)
		return exitUsage
	}
	defer f.Close()
	doc, err := dsl.Parse(f)
	if err != nil {
		fmt.Fprintln(stderr, "segbus-conform:", err)
		return exitUsage
	}
	if doc.Platform == nil {
		fmt.Fprintln(stderr, "segbus-conform: replay needs a model with a platform section")
		return exitUsage
	}
	if ds := doc.Validate(); ds.HasErrors() {
		fmt.Fprintf(stderr, "segbus-conform: %s is not a valid model pair:\n%s", path, ds)
		return exitUsage
	}

	failed := false
	c := conform.NewCase(doc)
	for _, o := range oracles {
		switch err := o.Check(c); {
		case err == nil:
			fmt.Fprintf(stdout, "PASS %s\n", o.Name)
		case conform.IsSkip(err):
			fmt.Fprintf(stdout, "SKIP %s\n", o.Name)
		default:
			failed = true
			fmt.Fprintf(stdout, "FAIL %s: %v\n", o.Name, err)
		}
	}
	if failed {
		return exitFailures
	}
	return exitOK
}

// printSummary renders the sweep result as text or versioned JSON.
func printSummary(sum *conform.Summary, asJSON bool, stdout io.Writer) error {
	if !asJSON {
		fmt.Fprint(stdout, sum)
		return nil
	}
	data, err := json.MarshalIndent(struct {
		Version int `json:"version"`
		*conform.Summary
	}{Version: 1, Summary: sum}, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(data))
	return nil
}
