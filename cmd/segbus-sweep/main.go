// segbus-sweep runs one-parameter sensitivity analyses over a modeled
// system: how the estimated execution time reacts to the package size,
// the per-package protocol cost, the CA's chain set-up cost, or one
// segment's clock frequency. Every sample is a full emulation; samples
// run concurrently.
//
// Usage:
//
//	segbus-sweep -model design.sbd -param package-size -values 9,18,36,72
//	segbus-sweep -model design.sbd -param segment-clock -segment 2 \
//	             -values 80MHz,90MHz,100MHz -csv out.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"segbus/internal/dsl"
	"segbus/internal/obs"
	"segbus/internal/obs/profflag"
	"segbus/internal/sweep"

	platformpkg "segbus/internal/platform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-sweep", flag.ContinueOnError)
	modelPath := fs.String("model", "", "textual model description with a platform section (required)")
	param := fs.String("param", "package-size", "parameter to sweep: package-size, header-ticks, ca-hop-ticks, segment-clock")
	valuesArg := fs.String("values", "", "comma-separated parameter values (frequencies accept MHz suffixes)")
	segment := fs.Int("segment", 1, "segment index for -param segment-clock")
	csvPath := fs.String("csv", "", "also write the curve as CSV to this file")
	heartbeat := fs.Duration("heartbeat", 0, "print a progress line (samples/s, failures, ETA) to stderr at this interval (0: off)")
	workers := fs.Int("workers", 0, "concurrent samples (0: GOMAXPROCS); never changes the curve")
	seed := fs.Int64("seed", 0, "work-stealing schedule seed; never changes the curve")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)
	if *modelPath == "" || *valuesArg == "" {
		fs.Usage()
		return fmt.Errorf("-model and -values are required")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	doc, err := dsl.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	if diags := doc.Validate(); diags.HasErrors() {
		return fmt.Errorf("model validation failed:\n%s", diags)
	}
	if doc.Platform == nil {
		return fmt.Errorf("the model description has no platform section")
	}

	parts := strings.Split(*valuesArg, ",")
	opts := sweep.Options{Workers: *workers, Seed: *seed}
	if *heartbeat > 0 {
		opts.Heartbeat = obs.NewHeartbeat(os.Stderr, "sample", *heartbeat, len(parts))
	}
	var curve sweep.Curve
	switch *param {
	case "package-size", "header-ticks", "ca-hop-ticks":
		ints := make([]int, 0, len(parts))
		for _, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad value %q", p)
			}
			ints = append(ints, n)
		}
		switch *param {
		case "package-size":
			curve = sweep.PackageSizes(doc.Model, doc.Platform, ints, opts)
		case "header-ticks":
			curve = sweep.HeaderTicks(doc.Model, doc.Platform, ints, opts)
		case "ca-hop-ticks":
			curve = sweep.CAHopTicks(doc.Model, doc.Platform, ints, opts)
		}
	case "segment-clock":
		clocks := make([]platformpkg.Hz, 0, len(parts))
		for _, p := range parts {
			hz, err := dsl.ParseHz(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			clocks = append(clocks, hz)
		}
		curve, err = sweep.SegmentClock(doc.Model, doc.Platform, *segment, clocks, opts)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown parameter %q", *param)
	}

	fmt.Fprint(stdout, curve.Table())
	for _, pt := range curve.Points {
		if pt.Err != nil {
			return fmt.Errorf("value %d: %w", pt.Value, pt.Err)
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(curve.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *csvPath)
	}
	return nil
}
