package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "../../testdata/mp3.sbd"

func TestRunPackageSizeSweep(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "curve.csv")
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-param", "package-size",
		"-values", "18,36,72", "-csv", csv}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "packageSize") {
		t.Errorf("table missing:\n%s", out.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Errorf("CSV rows = %d, want header + 3", len(lines))
	}
}

func TestRunSegmentClockSweep(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-model", fixture, "-param", "segment-clock",
		"-segment", "2", "-values", "80MHz,98MHz,120MHz"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "segment2ClockHz") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunOtherParams(t *testing.T) {
	for _, p := range []string{"header-ticks", "ca-hop-ticks"} {
		var out strings.Builder
		if err := run([]string{"-model", fixture, "-param", p, "-values", "0,25"}, &out); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestRunWorkerFlagsNeverChangeCurve(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		{"-model", fixture, "-param", "package-size", "-values", "18,36,72"},
		{"-model", fixture, "-param", "package-size", "-values", "18,36,72", "-workers", "1", "-seed", "7"},
		{"-model", fixture, "-param", "package-size", "-values", "18,36,72", "-workers", "8", "-seed", "13"},
	} {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("run %d output differs:\n%s\nvs\n%s", i, outputs[i], outputs[0])
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-model", fixture, "-param", "wormholes", "-values", "1"}, &out); err == nil {
		t.Error("unknown parameter accepted")
	}
	if err := run([]string{"-model", fixture, "-values", "abc"}, &out); err == nil {
		t.Error("bad value accepted")
	}
	if err := run([]string{"-model", fixture, "-param", "segment-clock", "-segment", "9", "-values", "90MHz"}, &out); err == nil {
		t.Error("bad segment accepted")
	}
	if err := run([]string{"-model", fixture, "-param", "package-size", "-values", "0"}, &out); err == nil {
		t.Error("failing sample not reported")
	}
}
