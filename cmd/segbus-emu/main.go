// segbus-emu is the SegBus emulator program: it reads the PSDF and PSM
// XML schemes produced by the model-to-text transformation, rebuilds
// the platform structure, runs the emulation and prints the
// performance report of the paper's section 4 — per-arbiter TCTs and
// request counts, border-unit package counts, per-process start/end
// times and the estimated total execution time.
//
// Usage:
//
//	segbus-emu -psdf gen/mp3-psdf.xsd -psm gen/mp3-psm.xsd [-s 36]
//	           [-refined] [-timeline] [-gantt] [-bu] [-csv out.csv]
//	           [-metrics-json m.json] [-metrics-prom m.prom]
//	           [-trace-perfetto trace.json]
//
// -metrics-json writes the run's monitoring counters as deterministic
// JSON (wall-clock rates excluded); -metrics-prom writes the same
// registry in Prometheus text exposition (rates included);
// -trace-perfetto writes the execution trace as Chrome trace-event
// JSON loadable at ui.perfetto.dev. Like every segbus tool, the
// shared diagnostics flags -version, -cpuprofile and -memprofile are
// available (see internal/obs/profflag).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"segbus/internal/analyze"
	"segbus/internal/core"
	"segbus/internal/emulator"
	"segbus/internal/obs"
	"segbus/internal/obs/profflag"
	"segbus/internal/power"
	"segbus/internal/psdf"
	"segbus/internal/realplat"
	report2 "segbus/internal/report"
	"segbus/internal/schema"
	"segbus/internal/stats"
	"segbus/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-emu:", err)
		os.Exit(1)
	}
}

// diagnosed unpacks an XML-scheme parse failure: when the scheme is
// well-formed XML but describes a broken model, every coded validation
// finding goes to stderr and the returned error only summarizes.
func diagnosed(path string, err error) error {
	ds, ok := analyze.FromError(err)
	if !ok {
		return err
	}
	for _, d := range ds {
		fmt.Fprintf(os.Stderr, "%s: %s\n", path, d)
	}
	return fmt.Errorf("%s: %d validation finding(s)", path, len(ds))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-emu", flag.ContinueOnError)
	psdfPath := fs.String("psdf", "", "PSDF XML scheme (required)")
	psmPath := fs.String("psm", "", "PSM XML scheme (required)")
	pkg := fs.Int("s", 0, "package size override (default: the scheme's)")
	iterations := fs.Int("iterations", 1, "emulate this many back-to-back frames of the application")
	refined := fs.Bool("refined", false, "run the refined (ground-truth) timing model instead of the estimation model")
	timeline := fs.Bool("timeline", false, "print the per-process progress timeline (Figure 10 view)")
	gantt := fs.Bool("gantt", false, "print the per-element activity graph (Figure 11 view)")
	buAnalysis := fs.Bool("bu", false, "print the border-unit UP/WP analysis")
	showPower := fs.Bool("power", false, "print the activity-based energy estimate")
	showUtil := fs.Bool("util", false, "print the per-element utilisation table")
	showCongestion := fs.Bool("congestion", false, "print the border-unit congestion analysis")
	showStages := fs.Bool("stages", false, "print the schedule-stage timing breakdown")
	csvPath := fs.String("csv", "", "write the trace intervals as CSV to this file")
	svgTimeline := fs.String("svg-timeline", "", "write the Figure 10 timeline as SVG to this file")
	svgActivity := fs.String("svg-activity", "", "write the Figure 11 activity graph as SVG to this file")
	htmlPath := fs.String("html", "", "write a self-contained HTML report (tables, figures, energy) to this file")
	jsonPath := fs.String("json", "", "write the trace as versioned JSON to this file")
	reportJSONPath := fs.String("report-json", "", "write the report as versioned JSON to this file")
	metricsJSONPath := fs.String("metrics-json", "", "write the run's metrics as deterministic JSON to this file")
	metricsPromPath := fs.String("metrics-prom", "", "write the run's metrics in Prometheus text exposition to this file")
	perfettoPath := fs.String("trace-perfetto", "", "write the trace as Chrome trace-event JSON (Perfetto-loadable) to this file")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	if *psdfPath == "" || *psmPath == "" {
		fs.Usage()
		return fmt.Errorf("-psdf and -psm are required")
	}
	psdfXML, err := os.ReadFile(*psdfPath)
	if err != nil {
		return err
	}
	psmXML, err := os.ReadFile(*psmPath)
	if err != nil {
		return err
	}
	m, err := schema.ParsePSDF(psdfXML)
	if err != nil {
		return diagnosed(*psdfPath, err)
	}
	plat, err := schema.ParsePSM(psmXML)
	if err != nil {
		return diagnosed(*psmPath, err)
	}
	if *pkg > 0 {
		plat.PackageSize = *pkg
	}
	if *iterations > 1 {
		m, err = psdf.Repeat(m, *iterations)
		if err != nil {
			return err
		}
	}

	// Pre-flight: the schemes are individually well-formed, but the
	// pair can still disagree (mapping, roles) or carry liveness
	// hazards. Reject with every coded finding, not just the first.
	if pre := core.Preflight(m, plat); pre.HasErrors() {
		for _, d := range pre.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
			for i, line := range d.Trace {
				fmt.Fprintf(os.Stderr, "  %4d. %s\n", i+1, line)
			}
		}
		e, w, _ := pre.Counts()
		return fmt.Errorf("model failed preflight analysis: %d error(s), %d warning(s)", e, w)
	}

	wantTrace := *timeline || *gantt || *csvPath != "" || *svgTimeline != "" || *svgActivity != "" || *showUtil || *htmlPath != "" || *jsonPath != "" || *perfettoPath != ""
	var reg *obs.Registry
	if *metricsJSONPath != "" || *metricsPromPath != "" {
		reg = obs.NewRegistry()
	}

	var report *emulator.Report
	var tr *trace.Trace
	if *refined {
		if wantTrace {
			tr = &trace.Trace{}
		}
		report, err = realplat.Run(m, plat, realplat.Config{Trace: tr, Metrics: reg})
	} else {
		var est *core.Estimation
		est, err = core.Estimate(m, plat, core.Options{Trace: wantTrace, Metrics: reg})
		if est != nil {
			report, tr = est.Report, est.Trace
		}
	}
	if err != nil {
		// Aggregate coded findings (e.g. an SB050 deadlock caught at
		// run time after an inconclusive preflight) the same way the
		// scheme validators are reported.
		if ds, ok := analyze.FromError(err); ok {
			for _, d := range ds {
				fmt.Fprintln(os.Stderr, d)
			}
			return fmt.Errorf("emulation aborted: %d coded finding(s)", len(ds))
		}
		return err
	}

	fmt.Fprint(stdout, report)
	if *buAnalysis {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, stats.BUTable(stats.AnalyzeBUs(report)))
	}
	if *showStages {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, stats.StageTable(report))
	}
	if *showCongestion {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, stats.CongestionReport(report))
	}
	if *showPower {
		pw, err := power.Estimate(m, plat, report, power.Params{})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, pw)
	}
	if *showUtil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, stats.UtilisationTable(stats.Utilisations(report, tr)))
	}
	if *timeline {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, tr.Timeline())
	}
	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, tr.Gantt(100))
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(tr.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *csvPath)
	}
	if *svgTimeline != "" {
		if err := os.WriteFile(*svgTimeline, []byte(tr.TimelineSVG(900)), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *svgTimeline)
	}
	if *svgActivity != "" {
		if err := os.WriteFile(*svgActivity, []byte(tr.ActivitySVG(900)), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *svgActivity)
	}
	if *reportJSONPath != "" {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportJSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *reportJSONPath)
	}
	if *jsonPath != "" {
		data, err := tr.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *jsonPath)
	}
	if *perfettoPath != "" {
		data, err := tr.Perfetto()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*perfettoPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *perfettoPath)
	}
	if *metricsJSONPath != "" {
		data, err := reg.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsJSONPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *metricsJSONPath)
	}
	if *metricsPromPath != "" {
		f, err := os.Create(*metricsPromPath)
		if err != nil {
			return err
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *metricsPromPath)
	}
	if *htmlPath != "" {
		en, err := power.Estimate(m, plat, report, power.Params{})
		if err != nil {
			return err
		}
		html, err := report2.Render(report2.Input{
			Title:    fmt.Sprintf("SegBus estimate: %s on %s", m.Name(), plat.Name),
			Model:    m,
			Platform: plat,
			Report:   report,
			Trace:    tr,
			Energy:   en,
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*htmlPath, []byte(html), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *htmlPath)
	}
	return nil
}
