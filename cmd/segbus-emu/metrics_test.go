package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runMetricsJSON runs segbus-emu -metrics-json on the MP3 scenario and
// returns the written document.
func runMetricsJSON(t *testing.T, extra ...string) []byte {
	t.Helper()
	psdfPath, psmPath := genSchemes(t)
	out := filepath.Join(t.TempDir(), "metrics.json")
	args := append([]string{"-psdf", psdfPath, "-psm", psmPath, "-metrics-json", out}, extra...)
	var stdout strings.Builder
	if err := run(args, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMetricsJSONGolden pins the metrics document of the paper's MP3
// scenario byte for byte — the contract behind scripts/check.sh's
// metrics golden diff. Regenerate after a deliberate change to the
// metric catalogue with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/segbus-emu -run TestMetricsJSONGolden
func TestMetricsJSONGolden(t *testing.T) {
	const golden = "../../testdata/golden/mp3-metrics.json"
	got := runMetricsJSON(t)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s is stale: rerun with UPDATE_GOLDEN=1\n--- got ---\n%s", golden, got)
	}
}

// TestMetricsJSONDeterministic: two separate processes' worth of runs
// produce byte-identical metrics (the volatile rate gauge is excluded
// from this export).
func TestMetricsJSONDeterministic(t *testing.T) {
	a := runMetricsJSON(t)
	b := runMetricsJSON(t)
	if !bytes.Equal(a, b) {
		t.Error("-metrics-json differs across identical runs")
	}
	var doc struct {
		Version int                        `json:"version"`
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 || len(doc.Metrics) == 0 {
		t.Errorf("metrics doc = version %d, %d metrics", doc.Version, len(doc.Metrics))
	}
	for id := range doc.Metrics {
		if strings.HasPrefix(id, "segbus_emu_sim_ps_per_wall_second") {
			t.Error("volatile rate gauge leaked into -metrics-json")
		}
	}
}

// TestMetricsPromOutput: the Prometheus exposition variant renders the
// catalogue with HELP/TYPE headers and includes the volatile rate.
func TestMetricsPromOutput(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	out := filepath.Join(t.TempDir(), "metrics.prom")
	var stdout strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-metrics-prom", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		"# TYPE segbus_emu_arbiter_grants_total counter",
		"# TYPE segbus_emu_bus_contention_wait_ps histogram",
		"segbus_emu_sim_ps_per_wall_second",
		`le="+Inf"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// TestTracePerfettoOutput: -trace-perfetto writes loadable Chrome
// trace-event JSON with one thread per platform element.
func TestTracePerfettoOutput(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-trace-perfetto", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events recorded")
	}
	threads := map[string]bool{}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			threads[ev.Args["name"].(string)] = true
		}
		if ev.Phase == "X" {
			complete++
		}
	}
	for _, el := range []string{"P0", "CA", "BU12"} {
		if !threads[el] {
			t.Errorf("no thread for element %s", el)
		}
	}
	if complete == 0 {
		t.Error("no complete (ph=X) events")
	}
}
