package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
	"segbus/internal/platform"
)

// genSchemes writes the MP3 schemes into a temp dir and returns their
// paths.
func genSchemes(t *testing.T) (psdfPath, psmPath string) {
	t.Helper()
	dir := t.TempDir()
	psdfXML, err := m2t.GeneratePSDF(apps.MP3Model())
	if err != nil {
		t.Fatal(err)
	}
	psmXML, err := m2t.GeneratePSM(apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	psdfPath = filepath.Join(dir, "psdf.xsd")
	psmPath = filepath.Join(dir, "psm.xsd")
	if err := os.WriteFile(psdfPath, psdfXML, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(psmPath, psmXML, 0o644); err != nil {
		t.Fatal(err)
	}
	return psdfPath, psmPath
}

func TestRunEmulation(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"CA TCT =", "Execution time =", "BU12:", "SA3:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunRefinedSlower(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var est, ref strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &est); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-refined"}, &ref); err != nil {
		t.Fatal(err)
	}
	if est.String() == ref.String() {
		t.Error("refined run identical to estimation run")
	}
}

func TestRunViews(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	csv := filepath.Join(t.TempDir(), "trace.csv")
	var out strings.Builder
	err := run([]string{"-psdf", psdfPath, "-psm", psmPath,
		"-timeline", "-gantt", "-bu", "-csv", csv}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"meanWP", "start", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("views missing %q", want)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "element,kind") {
		t.Error("CSV header missing")
	}
}

func TestRunPackageSizeOverride(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var s36, s18 strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &s36); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-s", "18"}, &s18); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s18.String(), "package size 18") {
		t.Error("override not applied")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-psdf", "nope.xsd", "-psm", "nope.xsd"}, &out); err == nil {
		t.Error("missing files accepted")
	}
}

// TestRunPreflightRejectsMismatchedPair pairs the full MP3 PSDF with a
// PSM hosting only half the processes: each scheme is valid alone, so
// only the pre-flight analysis can catch the broken mapping, and it
// must exit non-zero with the aggregated findings.
func TestRunPreflightRejectsMismatchedPair(t *testing.T) {
	psdfPath, _ := genSchemes(t)
	partial := platform.New("partial", 100*platform.MHz, 36)
	partial.AddSegment(100*platform.MHz, 0, 1, 2, 3, 4, 5, 6, 7)
	psmXML, err := m2t.GeneratePSM(partial)
	if err != nil {
		t.Fatal(err)
	}
	psmPath := filepath.Join(t.TempDir(), "partial-psm.xsd")
	if err := os.WriteFile(psmPath, psmXML, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = run([]string{"-psdf", psdfPath, "-psm", psmPath}, &out)
	if err == nil {
		t.Fatal("mismatched pair accepted")
	}
	if !strings.Contains(err.Error(), "preflight") {
		t.Errorf("err = %v, want a preflight rejection", err)
	}
}

// TestRunInvalidPSDFAggregates feeds a scheme that parses as XML but
// describes a broken model (a self-loop flow); run must surface the
// coded validation findings instead of a bare first error.
func TestRunInvalidPSDFAggregates(t *testing.T) {
	const badPSDF = `<?xml version="1.0" encoding="UTF-8"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:annotation>
    <xs:appinfo>nominalPackageSize=36</xs:appinfo>
  </xs:annotation>
  <xs:element name="broken" type="Broken"/>
  <xs:complexType name="Broken">
    <xs:all>
      <xs:element name="p0" type="P0"/>
    </xs:all>
  </xs:complexType>
  <xs:complexType name="P0">
    <xs:all>
      <xs:element name="P0_36_1_5" type="Transfer"/>
    </xs:all>
  </xs:complexType>
</xs:schema>
`
	_, psmPath := genSchemes(t)
	psdfPath := filepath.Join(t.TempDir(), "bad-psdf.xsd")
	if err := os.WriteFile(psdfPath, []byte(badPSDF), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &out)
	if err == nil {
		t.Fatal("self-loop scheme accepted")
	}
	if !strings.Contains(err.Error(), "validation finding(s)") {
		t.Errorf("err = %v, want an aggregated findings summary", err)
	}
}

func TestRunSVGOutputs(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	dir := t.TempDir()
	tl := filepath.Join(dir, "timeline.svg")
	act := filepath.Join(dir, "activity.svg")
	var out strings.Builder
	err := run([]string{"-psdf", psdfPath, "-psm", psmPath,
		"-svg-timeline", tl, "-svg-activity", act}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{tl, act} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", path)
		}
	}
}

func TestRunPowerFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-power"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dynamic") || !strings.Contains(out.String(), "mW") {
		t.Error("power breakdown missing")
	}
}

func TestRunUtilFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-util"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "busy%") || !strings.Contains(out.String(), "Segment 2") {
		t.Error("utilisation table missing")
	}
}

func TestRunIterations(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var one, three strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &one); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-iterations", "3"}, &three); err != nil {
		t.Fatal(err)
	}
	if one.String() == three.String() {
		t.Error("iterations flag had no effect")
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-iterations", "0"}, &one); err != nil {
		t.Error("iterations=0 should behave as a single frame:", err)
	}
}

func TestRunHTMLReport(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	path := filepath.Join(t.TempDir(), "report.html")
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-html", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "Border-unit analysis", "<svg", "Energy breakdown"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

func TestRunJSONTrace(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Error("JSON trace malformed")
	}
}

func TestRunCongestionFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-congestion"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict") {
		t.Error("congestion analysis missing")
	}
}

func TestRunStagesFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-stages"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "span (us)") {
		t.Error("stage table missing")
	}
}

func TestRunReportJSON(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	path := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-report-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"execution_time_ps"`) {
		t.Error("report JSON malformed")
	}
}
