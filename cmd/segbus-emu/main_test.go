package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
)

// genSchemes writes the MP3 schemes into a temp dir and returns their
// paths.
func genSchemes(t *testing.T) (psdfPath, psmPath string) {
	t.Helper()
	dir := t.TempDir()
	psdfXML, err := m2t.GeneratePSDF(apps.MP3Model())
	if err != nil {
		t.Fatal(err)
	}
	psmXML, err := m2t.GeneratePSM(apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	psdfPath = filepath.Join(dir, "psdf.xsd")
	psmPath = filepath.Join(dir, "psm.xsd")
	if err := os.WriteFile(psdfPath, psdfXML, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(psmPath, psmXML, 0o644); err != nil {
		t.Fatal(err)
	}
	return psdfPath, psmPath
}

func TestRunEmulation(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"CA TCT =", "Execution time =", "BU12:", "SA3:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunRefinedSlower(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var est, ref strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &est); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-refined"}, &ref); err != nil {
		t.Fatal(err)
	}
	if est.String() == ref.String() {
		t.Error("refined run identical to estimation run")
	}
}

func TestRunViews(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	csv := filepath.Join(t.TempDir(), "trace.csv")
	var out strings.Builder
	err := run([]string{"-psdf", psdfPath, "-psm", psmPath,
		"-timeline", "-gantt", "-bu", "-csv", csv}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"meanWP", "start", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("views missing %q", want)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "element,kind") {
		t.Error("CSV header missing")
	}
}

func TestRunPackageSizeOverride(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var s36, s18 strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &s36); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-s", "18"}, &s18); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s18.String(), "package size 18") {
		t.Error("override not applied")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-psdf", "nope.xsd", "-psm", "nope.xsd"}, &out); err == nil {
		t.Error("missing files accepted")
	}
}

func TestRunSVGOutputs(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	dir := t.TempDir()
	tl := filepath.Join(dir, "timeline.svg")
	act := filepath.Join(dir, "activity.svg")
	var out strings.Builder
	err := run([]string{"-psdf", psdfPath, "-psm", psmPath,
		"-svg-timeline", tl, "-svg-activity", act}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{tl, act} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", path)
		}
	}
}

func TestRunPowerFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-power"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dynamic") || !strings.Contains(out.String(), "mW") {
		t.Error("power breakdown missing")
	}
}

func TestRunUtilFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-util"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "busy%") || !strings.Contains(out.String(), "Segment 2") {
		t.Error("utilisation table missing")
	}
}

func TestRunIterations(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var one, three strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath}, &one); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-iterations", "3"}, &three); err != nil {
		t.Fatal(err)
	}
	if one.String() == three.String() {
		t.Error("iterations flag had no effect")
	}
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-iterations", "0"}, &one); err != nil {
		t.Error("iterations=0 should behave as a single frame:", err)
	}
}

func TestRunHTMLReport(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	path := filepath.Join(t.TempDir(), "report.html")
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-html", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "Border-unit analysis", "<svg", "Energy breakdown"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

func TestRunJSONTrace(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Error("JSON trace malformed")
	}
}

func TestRunCongestionFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-congestion"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict") {
		t.Error("congestion analysis missing")
	}
}

func TestRunStagesFlag(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-stages"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "span (us)") {
		t.Error("stage table missing")
	}
}

func TestRunReportJSON(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	path := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	if err := run([]string{"-psdf", psdfPath, "-psm", psmPath, "-report-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"execution_time_ps"`) {
		t.Error("report JSON malformed")
	}
}
