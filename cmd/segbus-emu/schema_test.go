package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reportSchema walks a JSON document's token stream and renders its
// shape: every key path in emission order, descending into the first
// element of each array. Values are ignored, so the golden pins the
// field names and their order — the machine-readable contract of
// segbus-emu -report-json — without pinning timings.
func reportSchema(t *testing.T, data []byte) string {
	t.Helper()
	// A token walk preserves key order, which a map decode would lose.
	dec := json.NewDecoder(bytes.NewReader(data))
	var b strings.Builder
	var walk func(path string) error
	walk = func(path string) error {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch d := tok.(type) {
		case json.Delim:
			switch d {
			case '{':
				for dec.More() {
					keyTok, err := dec.Token()
					if err != nil {
						return err
					}
					key, ok := keyTok.(string)
					if !ok {
						return fmt.Errorf("non-string key %v at %s", keyTok, path)
					}
					sub := path + "." + key
					fmt.Fprintln(&b, sub)
					if err := walk(sub); err != nil {
						return err
					}
				}
				_, err := dec.Token() // consume '}'
				return err
			case '[':
				first := true
				for dec.More() {
					if first {
						if err := walk(path + "[]"); err != nil {
							return err
						}
						first = false
						continue
					}
					// Later elements share the first one's shape; skip
					// them without emitting duplicate paths.
					var skip interface{}
					if err := dec.Decode(&skip); err != nil {
						return err
					}
				}
				_, err := dec.Token() // consume ']'
				return err
			}
		}
		return nil
	}
	if err := walk(""); err != nil {
		t.Fatalf("walking report JSON: %v\n%s", err, data)
	}
	return b.String()
}

// TestReportJSONSchemaGolden locks the segbus-emu JSON report schema:
// adding, removing, renaming or reordering fields must show up as a
// reviewed golden diff, because downstream tooling (segbus-conform's
// determinism oracle, dashboards, the sweep CSVs) parses this format.
//
// Regenerate after a deliberate schema change with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/segbus-emu -run TestReportJSONSchemaGolden
func TestReportJSONSchemaGolden(t *testing.T) {
	psdfPath, psmPath := genSchemes(t)
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout strings.Builder
	for _, mode := range []struct {
		name string
		args []string
	}{
		{"estimation", nil},
		{"refined", []string{"-refined"}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			args := append([]string{"-psdf", psdfPath, "-psm", psmPath, "-report-json", out}, mode.args...)
			if err := run(args, &stdout); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			got := reportSchema(t, data)
			goldenPath := filepath.Join("testdata", "report_schema.golden")
			if os.Getenv("UPDATE_GOLDEN") != "" && mode.name == "estimation" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("report JSON schema diverged from %s:\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}
