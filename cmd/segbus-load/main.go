// segbus-load is the differential load harness for the estimation
// service: it generates a seeded corpus of servable models
// (internal/conform's generator stream, filtered to cases POST
// /estimate answers 200 for), drives the service with a configurable
// mix of warm and cold traffic — single requests or batches — and
// reports throughput, latency percentiles and cache behaviour.
//
// It is a load generator that doubles as an integration test driver:
// with -diff every served report is compared byte-for-byte against
// the CLI pipeline's canonical JSON for the same case, and with
// -prove-coalescing a burst of identical concurrent requests at a
// cold key must collapse to exactly one emulation. Any mismatch or a
// failed proof makes the run exit non-zero, so scripts/check.sh can
// gate on it.
//
// Usage:
//
//	segbus-load                       # in-process server, default mix
//	segbus-load -addr host:8080       # aim at a running segbus-served
//	segbus-load -seed 1 -models 12 -requests 300 -concurrency 8 \
//	            -hit-ratio 0.6 -batch 4 -diff -prove-coalescing -json
//	segbus-load -slowest 5               # server-side stage breakdown
//	                                     # of the 5 worst requests
//
// Without -addr the harness starts its own server on a real loopback
// listener (the full HTTP stack, not a stubbed handler) and counts
// actual emulations through an injected hook; against a remote server
// emulations are unknown (-1 in the report) and coalescing is proven
// from cache markers alone.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"segbus/internal/benchrec"
	"segbus/internal/conform"
	"segbus/internal/dsl"
	"segbus/internal/obs/profflag"
	"segbus/internal/obs/reqtrace"
	"segbus/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-load:", err)
		os.Exit(1)
	}
}

// ReportSchema versions the JSON report layout.
const ReportSchema = "segbus/load-report/v2"

// Latency is the merged request-latency digest, in microseconds.
type Latency struct {
	P50Us   int64 `json:"p50_us"`
	P90Us   int64 `json:"p90_us"`
	P99Us   int64 `json:"p99_us"`
	MaxUs   int64 `json:"max_us"`
	Samples int64 `json:"samples,omitempty"`
}

// digest folds a sorted latency sample into the percentile summary.
func digest(sorted []int64) Latency {
	n := len(sorted)
	if n == 0 {
		return Latency{}
	}
	return Latency{
		P50Us:   sorted[boundIdx(n, 50)],
		P90Us:   sorted[boundIdx(n, 90)],
		P99Us:   sorted[boundIdx(n, 99)],
		MaxUs:   sorted[n-1],
		Samples: int64(n),
	}
}

// SlowStage is one stage of a slow request's server-side breakdown:
// a top-level span of the request trace.
type SlowStage struct {
	Name  string `json:"name"`
	DurUs int64  `json:"dur_us"`
}

// SlowRequest is one entry of the -slowest report: the server's own
// stage decomposition of a worst-latency request, read back from
// /debug/requests after the run.
type SlowRequest struct {
	TraceID  string      `json:"trace_id"`
	Endpoint string      `json:"endpoint"`
	Status   int         `json:"status"`
	DurUs    int64       `json:"dur_us"`
	Stages   []SlowStage `json:"stages"`
}

// Report is the machine-readable run summary (-json).
type Report struct {
	Schema      string           `json:"schema"`
	Target      string           `json:"target"`
	Seed        int64            `json:"seed"`
	Models      int              `json:"models"`
	Concurrency int              `json:"concurrency"`
	Batch       int              `json:"batch"`
	HitRatio    float64          `json:"hit_ratio"`
	Requests    int64            `json:"requests"` // HTTP requests issued
	Items       int64            `json:"items"`    // estimate items (batch items counted singly)
	Status      map[string]int64 `json:"status"`   // per-item HTTP status tally
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	Coalesced   int64            `json:"coalesced"`
	// CacheShards is the server cache's per-shard hit/miss/eviction
	// tally (in-process runs only — a remote server's shards are not
	// observable from the client side).
	CacheShards []serve.CacheShardStats `json:"cache_shards,omitempty"`
	Emulations  int64                   `json:"emulations"` // in-process hook count; -1 against a remote server
	Checked     int64                   `json:"checked"`    // items compared against the CLI oracle
	Mismatches  int64                   `json:"mismatches"`
	ProofRan    bool                    `json:"coalescing_proof_ran"`
	Proven      bool                    `json:"coalescing_proven"`
	ElapsedMs   float64                 `json:"elapsed_ms"`
	ReqPerSec   float64                 `json:"requests_per_sec"`
	ItemsPerSec float64                 `json:"items_per_sec"`
	Latency     Latency                 `json:"latency"`
	// MarkerLatency splits single-request latency by the server's
	// X-Segbus-Cache marker (hit / miss / coalesced). Batch requests
	// mix markers within one round trip, so they are excluded.
	MarkerLatency    map[string]Latency `json:"marker_latency,omitempty"`
	HitP50BaselineUs int64              `json:"hit_p50_baseline_us,omitempty"` // -hit-p50-baseline ceiling
	Slowest          []SlowRequest      `json:"slowest,omitempty"`             // -slowest N server-side breakdowns
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-load", flag.ContinueOnError)
	addr := fs.String("addr", "", "target host:port of a running segbus-served (empty: start an in-process server)")
	seed := fs.Int64("seed", 1, "corpus seed: same seed, same models, same traffic")
	models := fs.Int("models", 16, "distinct servable models in the corpus")
	corpusDir := fs.String("corpus", "", "scenario directory to seed the generator's mutations with (optional)")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	requests := fs.Int64("requests", 400, "total HTTP requests to issue (ignored when -duration is set)")
	duration := fs.Duration("duration", 0, "run for this long instead of a fixed request count")
	hitRatio := fs.Float64("hit-ratio", 0.5, "fraction of requests aimed at the pre-warmed hot quarter of the corpus")
	batch := fs.Int("batch", 1, "items per request: 1 uses POST /estimate, >1 uses /estimate/batch")
	workers := fs.Int("workers", 0, "in-process server: concurrent emulations (0: one per CPU)")
	queue := fs.Int("queue", -1, "in-process server: admission queue depth (-1: twice the workers)")
	cacheEntries := fs.Int("cache", 1024, "in-process server: result-cache entries")
	cacheShards := fs.Int("cache-shards", 0, "in-process server: result-cache shards")
	timeout := fs.Duration("timeout", 30*time.Second, "client request timeout")
	diff := fs.Bool("diff", false, "compare every served report byte-for-byte against the CLI pipeline")
	slowest := fs.Int("slowest", 0, "after the run, print the server-side stage breakdown of the N slowest requests (forces tracing via seeded traceparent headers)")
	hitBaseline := fs.String("hit-p50-baseline", "", "benchrec BENCH_<n>.json: fail unless the warm-hit p50 beats its serve/cache_hit ns_per_op")
	prove := fs.Bool("prove-coalescing", false, "after the run, prove a concurrent identical burst coalesces to one emulation")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	if *models < 1 {
		return fmt.Errorf("-models must be at least 1")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be at least 1")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be at least 1")
	}
	if *hitRatio < 0 || *hitRatio > 1 {
		return fmt.Errorf("-hit-ratio must be in [0,1]")
	}
	var baselineUs int64
	if *hitBaseline != "" {
		var err error
		if baselineUs, err = readHitBaseline(*hitBaseline); err != nil {
			return fmt.Errorf("-hit-p50-baseline: %w", err)
		}
		if *batch != 1 {
			return fmt.Errorf("-hit-p50-baseline needs single-request traffic (-batch 1): batch markers are per item, not per round trip")
		}
	}

	// The corpus: -models traffic cases plus one reserved for the
	// coalescing proof (it must be cold when the proof runs).
	var corpus []*dsl.Document
	if *corpusDir != "" {
		var err error
		corpus, err = conform.LoadCorpusDir(*corpusDir)
		if err != nil {
			return err
		}
	}
	cases, err := conform.ServableCases(*seed, *models+1, corpus)
	if err != nil {
		return err
	}
	traffic, reserved := cases[:*models], cases[*models]

	// Pre-render request bodies and (for -diff) the canonical CLI
	// report bytes, so the measured loop does no model work.
	items := make([]serve.EstimateRequest, len(traffic))
	singles := make([][]byte, len(traffic))
	canonical := make([][]byte, len(traffic))
	for i, c := range traffic {
		psdfXML, psmXML, err := c.Schemes()
		if err != nil {
			return fmt.Errorf("case %d: %w", i, err)
		}
		items[i] = serve.EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)}
		if singles[i], err = json.Marshal(items[i]); err != nil {
			return err
		}
		if *diff {
			if canonical[i], err = c.ReportJSON(); err != nil {
				return fmt.Errorf("case %d: canonical run: %w", i, err)
			}
		}
	}

	// Target: a remote server, or the full in-process stack on a real
	// loopback listener with an emulation-counting hook.
	var emulations atomic.Int64
	var inSrv *serve.Server
	target := *addr
	inProcess := target == ""
	if inProcess {
		s := serve.New(serve.Config{
			Workers:      *workers,
			Queue:        *queue,
			CacheEntries: *cacheEntries,
			CacheShards:  *cacheShards,
			TraceSlowest: *slowest,
			OnEmulate:    func() { emulations.Add(1) },
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		target = ln.Addr().String()
		inSrv = s
	}
	base := target
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: *timeout}

	// Warm the hot quarter so -hit-ratio traffic actually hits.
	hot := len(traffic) / 4
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < hot; i++ {
		resp, err := client.Post(base+"/estimate", "application/json", bytes.NewReader(singles[i]))
		if err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warmup case %d: status %d", i, resp.StatusCode)
		}
	}

	rep := &Report{
		Schema: ReportSchema, Target: base, Seed: *seed, Models: *models,
		Concurrency: *concurrency, Batch: *batch, HitRatio: *hitRatio,
		Status: make(map[string]int64), Emulations: -1,
	}
	baseEmu := emulations.Load()

	// The measured run: every worker owns a derived seed, so the
	// traffic mix is reproducible regardless of scheduling.
	var (
		issued    atomic.Int64 // requests claimed (stop condition)
		reqs      atomic.Int64
		itemCount atomic.Int64
		hits      atomic.Int64
		misses    atomic.Int64
		coalesced atomic.Int64
		checked   atomic.Int64
		mismatch  atomic.Int64
	)
	statusMu := sync.Mutex{}
	countStatus := func(code int, n int64) {
		statusMu.Lock()
		rep.Status[fmt.Sprint(code)] += n
		statusMu.Unlock()
	}
	countMarker := func(marker string) {
		switch marker {
		case "hit":
			hits.Add(1)
		case "miss":
			misses.Add(1)
		case "coalesced":
			coalesced.Add(1)
		}
	}
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	latencies := make([][]int64, *concurrency)
	markerLat := make([]map[string][]int64, *concurrency)
	for w := range markerLat {
		markerLat[w] = make(map[string][]int64)
	}
	errs := make(chan error, *concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			pick := func() int {
				if rng.Float64() < *hitRatio {
					return rng.Intn(hot)
				}
				return rng.Intn(len(traffic))
			}
			for {
				if deadline.IsZero() {
					if issued.Add(1) > *requests {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}

				var body []byte
				var picked []int
				if *batch == 1 {
					picked = []int{pick()}
					body = singles[picked[0]]
				} else {
					br := serve.BatchRequest{Items: make([]serve.EstimateRequest, *batch)}
					picked = make([]int, *batch)
					for j := range br.Items {
						picked[j] = pick()
						br.Items[j] = items[picked[j]]
					}
					var err error
					if body, err = json.Marshal(br); err != nil {
						errs <- err
						return
					}
				}
				path := "/estimate"
				if *batch > 1 {
					path = "/estimate/batch"
				}
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if *slowest > 0 {
					// Force server-side tracing so /debug/requests can
					// attribute the slowest requests after the run; the
					// ids are seeded, so a run is reproducible.
					req.Header.Set("traceparent", forcedTraceparent(rng))
				}
				resp, err := client.Do(req)
				if err != nil {
					errs <- err
					return
				}
				payload, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				lat := time.Since(t0).Microseconds()
				latencies[w] = append(latencies[w], lat)
				reqs.Add(1)
				itemCount.Add(int64(len(picked)))

				if *batch == 1 {
					countStatus(resp.StatusCode, 1)
					if resp.StatusCode == http.StatusOK {
						marker := resp.Header.Get("X-Segbus-Cache")
						countMarker(marker)
						if marker != "" {
							markerLat[w][marker] = append(markerLat[w][marker], lat)
						}
						if *diff {
							checked.Add(1)
							if !bytes.Equal(payload, canonical[picked[0]]) {
								mismatch.Add(1)
							}
						}
					}
					continue
				}
				if resp.StatusCode != http.StatusOK {
					countStatus(resp.StatusCode, int64(len(picked)))
					continue
				}
				var br serve.BatchResponse
				if err := json.Unmarshal(payload, &br); err != nil {
					errs <- fmt.Errorf("batch response: %w", err)
					return
				}
				if len(br.Items) != len(picked) {
					errs <- fmt.Errorf("batch returned %d items for %d sent", len(br.Items), len(picked))
					return
				}
				for j, it := range br.Items {
					countStatus(it.Status, 1)
					if it.Status != http.StatusOK {
						continue
					}
					countMarker(it.Cache)
					if *diff {
						checked.Add(1)
						if !bytes.Equal([]byte(it.Report), canonical[picked[j]]) {
							mismatch.Add(1)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	rep.Requests = reqs.Load()
	rep.Items = itemCount.Load()
	rep.CacheHits = hits.Load()
	rep.CacheMisses = misses.Load()
	rep.Coalesced = coalesced.Load()
	rep.Checked = checked.Load()
	rep.Mismatches = mismatch.Load()
	rep.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		rep.ReqPerSec = float64(rep.Requests) / elapsed.Seconds()
		rep.ItemsPerSec = float64(rep.Items) / elapsed.Seconds()
	}
	if inProcess {
		rep.Emulations = emulations.Load() - baseEmu
		rep.CacheShards = inSrv.Cache().ShardStats()
	}
	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Latency = digest(all)
	merged := make(map[string][]int64)
	for _, ml := range markerLat {
		for marker, l := range ml {
			merged[marker] = append(merged[marker], l...)
		}
	}
	if len(merged) > 0 {
		rep.MarkerLatency = make(map[string]Latency, len(merged))
		for marker, l := range merged {
			sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
			rep.MarkerLatency[marker] = digest(l)
		}
	}

	// The coalescing proof: a synchronized burst of identical requests
	// at the reserved (still cold) model must produce exactly one
	// cache miss — every other response was coalesced onto that
	// flight or served from the cache it filled. In process, the
	// emulation hook must agree.
	if *prove {
		rep.ProofRan = true
		proven, err := proveCoalescing(client, base, reserved, *concurrency, &emulations, inProcess)
		if err != nil {
			return err
		}
		rep.Proven = proven
	}

	rep.HitP50BaselineUs = baselineUs

	// The slowest-request breakdowns come from the server's own flight
	// recorder, not from client-side timing: the client can only see
	// total latency, the server knows which stage ate it.
	if *slowest > 0 {
		slow, err := fetchSlowest(client, base, *slowest)
		if err != nil {
			return fmt.Errorf("-slowest: %w", err)
		}
		rep.Slowest = slow
	}

	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		printText(stdout, rep)
	}

	// Gate conditions for CI use.
	if rep.Mismatches > 0 {
		return fmt.Errorf("%d/%d served reports differ from the CLI pipeline", rep.Mismatches, rep.Checked)
	}
	if *prove && !rep.Proven {
		return fmt.Errorf("coalescing not proven: concurrent identical burst cost more than one emulation")
	}
	if inProcess && *hitRatio > 0 && rep.Status["200"] >= 20 && rep.Emulations >= rep.Status["200"] {
		return fmt.Errorf("no caching benefit: %d emulations for %d served items on a warm corpus", rep.Emulations, rep.Status["200"])
	}
	if *hitBaseline != "" {
		hl, ok := rep.MarkerLatency["hit"]
		if !ok || hl.Samples < 20 {
			return fmt.Errorf("hit-p50 gate needs at least 20 hit-marked responses, got %d (raise -requests or -hit-ratio)", hl.Samples)
		}
		if hl.P50Us >= baselineUs {
			return fmt.Errorf("hit p50 %dµs has not improved on the %dµs serve/cache_hit baseline from %s",
				hl.P50Us, baselineUs, *hitBaseline)
		}
	}
	return nil
}

// readHitBaseline pulls the serve/cache_hit timing out of a committed
// benchrec record and converts it to the gate's microsecond ceiling.
// The record is re-validated first, so a stale or corrupt baseline
// file fails loudly rather than gating against garbage.
func readHitBaseline(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if err := benchrec.Validate(data); err != nil {
		return 0, err
	}
	var rec benchrec.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return 0, err
	}
	for _, r := range rec.Results {
		if r.Name == "serve/cache_hit" {
			us := int64(r.NsPerOp / 1000)
			if us < 1 {
				return 0, fmt.Errorf("%s: serve/cache_hit baseline %vns is below the harness's 1µs resolution", path, r.NsPerOp)
			}
			return us, nil
		}
	}
	return 0, fmt.Errorf("%s: no serve/cache_hit benchmark in record", path)
}

// forcedTraceparent renders a W3C traceparent with the sampled flag
// from the worker's seeded rng, so the server is forced to trace the
// request under a reproducible id.
func forcedTraceparent(rng *rand.Rand) string {
	hi, lo := rng.Uint64(), rng.Uint64()
	if hi|lo == 0 {
		lo = 1 // the all-zero trace id is invalid per W3C
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", hi, lo, rng.Uint64())
}

// fetchSlowest reads the server's flight recorder and flattens its
// slowest-trace list into the report shape: one row per request, with
// the top-level stage spans as the breakdown.
func fetchSlowest(client *http.Client, base string, n int) ([]SlowRequest, error) {
	resp, err := client.Get(base + "/debug/requests?n=1")
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/requests: status %d (is tracing enabled on the server?)", resp.StatusCode)
	}
	var doc reqtrace.Document
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("/debug/requests: %w", err)
	}
	if doc.Schema != reqtrace.DocumentSchema {
		return nil, fmt.Errorf("/debug/requests: schema %q, want %q", doc.Schema, reqtrace.DocumentSchema)
	}
	if len(doc.Slowest) > n {
		doc.Slowest = doc.Slowest[:n]
	}
	out := make([]SlowRequest, 0, len(doc.Slowest))
	for _, s := range doc.Slowest {
		sr := SlowRequest{
			TraceID:  s.TraceID,
			Endpoint: s.Endpoint,
			Status:   s.Status,
			DurUs:    s.DurNs / 1000,
		}
		for _, sp := range s.Spans {
			if sp.Parent != 0 {
				continue // stages are the root's direct children
			}
			sr.Stages = append(sr.Stages, SlowStage{Name: sp.Name, DurUs: sp.DurNs / 1000})
		}
		out = append(out, sr)
	}
	return out, nil
}

// boundIdx maps a percentile to a valid index of a sorted slice.
func boundIdx(n, pct int) int {
	i := n * pct / 100
	if i >= n {
		i = n - 1
	}
	return i
}

// proveCoalescing fires k simultaneous identical requests at a cold
// key and checks they collapse: exactly one miss marker (in process,
// also exactly one emulation). The burst is barrier-released so the
// requests genuinely overlap.
func proveCoalescing(client *http.Client, base string, c *conform.Case, k int, emulations *atomic.Int64, inProcess bool) (bool, error) {
	if k < 2 {
		k = 2
	}
	psdfXML, psmXML, err := c.Schemes()
	if err != nil {
		return false, err
	}
	body, err := json.Marshal(serve.EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)})
	if err != nil {
		return false, err
	}
	before := emulations.Load()
	release := make(chan struct{})
	markers := make(chan string, k)
	errc := make(chan error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			resp, err := client.Post(base+"/estimate", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("proof request: status %d", resp.StatusCode)
				return
			}
			markers <- resp.Header.Get("X-Segbus-Cache")
		}()
	}
	close(release)
	wg.Wait()
	select {
	case err := <-errc:
		return false, err
	default:
	}
	close(markers)
	missCount := 0
	for m := range markers {
		if m == "miss" {
			missCount++
		}
	}
	if missCount != 1 {
		return false, nil
	}
	if inProcess && emulations.Load()-before != 1 {
		return false, nil
	}
	return true, nil
}

// printText renders the human report (the README sample).
func printText(w io.Writer, r *Report) {
	fmt.Fprintf(w, "segbus-load: %d requests (%d items) in %.1fms against %s\n",
		r.Requests, r.Items, r.ElapsedMs, r.Target)
	fmt.Fprintf(w, "  corpus:     %d models, seed %d, hit-ratio %.2f, batch %d, %d workers\n",
		r.Models, r.Seed, r.HitRatio, r.Batch, r.Concurrency)
	fmt.Fprintf(w, "  throughput: %.1f req/s, %.1f items/s\n", r.ReqPerSec, r.ItemsPerSec)
	keys := make([]string, 0, len(r.Status))
	for k := range r.Status {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "  status:    ")
	for _, k := range keys {
		fmt.Fprintf(w, " %d×%s", r.Status[k], k)
	}
	fmt.Fprintln(w)
	emu := "n/a (remote)"
	if r.Emulations >= 0 {
		emu = fmt.Sprint(r.Emulations)
	}
	fmt.Fprintf(w, "  cache:      %d hits, %d misses, %d coalesced (emulations: %s)\n",
		r.CacheHits, r.CacheMisses, r.Coalesced, emu)
	if len(r.CacheShards) > 0 {
		fmt.Fprintf(w, "  shards:    ")
		for _, st := range r.CacheShards {
			fmt.Fprintf(w, " [%d: %de %dh/%dm/%dv]", st.Shard, st.Entries, st.Hits, st.Misses, st.Evictions)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  latency:    p50 %s  p90 %s  p99 %s  max %s\n",
		us(r.Latency.P50Us), us(r.Latency.P90Us), us(r.Latency.P99Us), us(r.Latency.MaxUs))
	for _, marker := range []string{"hit", "miss", "coalesced"} {
		l, ok := r.MarkerLatency[marker]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "    %-9s p50 %s  p90 %s  p99 %s  max %s  (%d samples)\n",
			marker+":", us(l.P50Us), us(l.P90Us), us(l.P99Us), us(l.MaxUs), l.Samples)
	}
	if r.HitP50BaselineUs > 0 {
		fmt.Fprintf(w, "  hit-p50 gate: baseline %s (serve/cache_hit)\n", us(r.HitP50BaselineUs))
	}
	if r.Checked > 0 || r.Mismatches > 0 {
		fmt.Fprintf(w, "  differential: %d/%d byte-identical to the CLI pipeline\n",
			r.Checked-r.Mismatches, r.Checked)
	}
	if r.ProofRan {
		verdict := "FAILED"
		if r.Proven {
			verdict = "proven (one emulation for the concurrent identical burst)"
		}
		fmt.Fprintf(w, "  coalescing: %s\n", verdict)
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(w, "  slowest %d (server-side breakdown):\n", len(r.Slowest))
		for i, s := range r.Slowest {
			fmt.Fprintf(w, "    %d. %s %d %s  trace %.8s", i+1, us(s.DurUs), s.Status, s.Endpoint, s.TraceID)
			sep := "  ["
			for _, st := range s.Stages {
				fmt.Fprintf(w, "%s%s %s", sep, st.Name, us(st.DurUs))
				sep = " | "
			}
			if sep == " | " {
				fmt.Fprint(w, "]")
			}
			fmt.Fprintln(w)
		}
	}
}

// us renders a microsecond latency human-readably.
func us(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fms", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dµs", v)
	}
}
