package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadRunJSON drives a small but complete in-process run — warm
// and cold traffic, batches, differential checking and the coalescing
// proof — and checks the machine-readable report adds up.
func TestLoadRunJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-seed", "1", "-models", "6", "-requests", "60", "-concurrency", "4",
		"-hit-ratio", "0.5", "-batch", "3",
		"-corpus", filepath.Join("..", "..", "testdata", "scenarios"),
		"-diff", "-prove-coalescing", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Requests != 60 {
		t.Errorf("requests %d, want 60", rep.Requests)
	}
	if rep.Items != 180 {
		t.Errorf("items %d, want 180 (60 batches of 3)", rep.Items)
	}
	if rep.Status["200"] != 180 {
		t.Errorf("status tally %v, want 180 × 200", rep.Status)
	}
	if rep.Checked != 180 || rep.Mismatches != 0 {
		t.Errorf("differential checked=%d mismatches=%d, want 180/0", rep.Checked, rep.Mismatches)
	}
	// Every served item is exactly one of hit/miss/coalesced.
	if got := rep.CacheHits + rep.CacheMisses + rep.Coalesced; got != 180 {
		t.Errorf("markers sum to %d, want 180", got)
	}
	// The corpus has 6 models (plus warmup): a warm run must reuse.
	if rep.Emulations < 0 || rep.Emulations > 6 {
		t.Errorf("emulations %d, want 0..6 for a 6-model corpus", rep.Emulations)
	}
	if !rep.ProofRan || !rep.Proven {
		t.Errorf("coalescing proof ran=%v proven=%v", rep.ProofRan, rep.Proven)
	}
	if rep.Latency.MaxUs <= 0 || rep.Latency.P50Us > rep.Latency.MaxUs {
		t.Errorf("latency digest inconsistent: %+v", rep.Latency)
	}
	if rep.ElapsedMs <= 0 || rep.ItemsPerSec <= 0 {
		t.Errorf("throughput fields not populated: %+v", rep)
	}
	// In-process runs expose the cache's per-shard tallies. They are
	// the server-side view — warmup and the coalescing proof probe the
	// cache too, and the raw-bytes fast path answers repeat singles
	// without touching the shards at all — so the only portable
	// invariants are presence, sanity, and that the cold corpus forced
	// at least one canonical-pipeline miss and fill.
	if len(rep.CacheShards) == 0 {
		t.Fatal("in-process report has no cache_shards")
	}
	var entries int
	var shardMisses int64
	for _, st := range rep.CacheShards {
		if st.Entries < 0 || st.Hits < 0 || st.Misses < 0 || st.Evictions < 0 {
			t.Errorf("negative shard tally: %+v", st)
		}
		entries += st.Entries
		shardMisses += st.Misses
	}
	if shardMisses == 0 {
		t.Error("no shard recorded a miss on a cold corpus")
	}
	if entries == 0 {
		t.Error("no shard holds an entry after the run")
	}
}

// TestLoadRunTextSingles covers the single-request path (-batch 1)
// and the text renderer.
func TestLoadRunTextSingles(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-seed", "2", "-models", "4", "-requests", "30", "-concurrency", "3",
		"-hit-ratio", "1.0", "-batch", "1", "-diff",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"segbus-load: 30 requests (30 items)", "throughput:", "cache:", "shards:", "latency:", "differential: 30/30"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

// TestLoadRunSlowest covers -slowest: every request is traced via a
// forced traceparent, and the report ends with server-side stage
// breakdowns read back from /debug/requests.
func TestLoadRunSlowest(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-seed", "3", "-models", "4", "-requests", "24", "-concurrency", "3",
		"-hit-ratio", "0.5", "-batch", "1", "-slowest", "3", "-json",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Slowest) == 0 || len(rep.Slowest) > 3 {
		t.Fatalf("%d slowest entries, want 1..3", len(rep.Slowest))
	}
	prev := rep.Slowest[0].DurUs
	for i, s := range rep.Slowest {
		if len(s.TraceID) != 32 || s.Endpoint != "/estimate" || s.Status != 200 {
			t.Errorf("slowest[%d] = %+v", i, s)
		}
		if s.DurUs > prev {
			t.Errorf("slowest not worst-first: %d after %d", s.DurUs, prev)
		}
		prev = s.DurUs
		if len(s.Stages) == 0 {
			t.Errorf("slowest[%d] has no stage breakdown", i)
		}
		var sum int64
		names := make(map[string]bool)
		for _, st := range s.Stages {
			sum += st.DurUs
			names[st.Name] = true
		}
		if sum > s.DurUs+1 { // +1 absorbs per-stage ns→µs truncation
			t.Errorf("slowest[%d] stages sum to %dµs > total %dµs", i, sum, s.DurUs)
		}
		// A request is either the full pipeline (parse + cache_probe
		// after a raw-index miss) or a raw hit that stops at the
		// byte-level probe.
		if !(names["parse"] && names["cache_probe"]) && !names["raw_probe"] {
			t.Errorf("slowest[%d] stages match no known pipeline shape: %+v", i, s.Stages)
		}
	}
	// The worst request of a cold-ish run is an emulation, not a
	// byte-copy: it must show the full pipeline.
	worst := make(map[string]bool)
	for _, st := range rep.Slowest[0].Stages {
		worst[st.Name] = true
	}
	if !worst["parse"] || !worst["cache_probe"] {
		t.Errorf("slowest[0] missing parse/cache_probe: %+v", rep.Slowest[0].Stages)
	}

	// The text renderer includes the breakdown section.
	out.Reset()
	err = run([]string{
		"-seed", "3", "-models", "4", "-requests", "12", "-concurrency", "2",
		"-slowest", "2",
	}, &out)
	if err != nil {
		t.Fatalf("text run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "slowest 2 (server-side breakdown):") {
		t.Errorf("text report missing slowest section:\n%s", out.String())
	}
}

// TestLoadRunFlagValidation pins the argument gates.
func TestLoadRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-models", "0"},
		{"-concurrency", "0"},
		{"-batch", "0"},
		{"-hit-ratio", "1.5"},
		{"-hit-p50-baseline", "no-such-file.json"},
		{"-hit-p50-baseline", filepath.Join("..", "..", "BENCH_8.json"), "-batch", "3"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v did not error", args)
		}
	}
}

// TestLoadRunHitBaseline covers the -hit-p50-baseline gate: the
// baseline is read out of a committed benchrec record, per-marker
// latency digests are reported, and a run with too few hit samples is
// rejected rather than silently passing. The latency comparison
// itself is timing-dependent, so this test accepts either verdict and
// only fails on mechanical errors; scripts/check.sh enforces the
// verdict on a quiet machine.
func TestLoadRunHitBaseline(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_8.json")

	var out bytes.Buffer
	err := run([]string{
		"-seed", "4", "-models", "6", "-requests", "60", "-concurrency", "1",
		"-hit-ratio", "1.0", "-batch", "1", "-json",
		"-hit-p50-baseline", baseline,
	}, &out)
	if err != nil && !strings.Contains(err.Error(), "has not improved") {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep Report
	if jerr := json.Unmarshal(out.Bytes(), &rep); jerr != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", jerr, out.String())
	}
	if rep.HitP50BaselineUs < 1 {
		t.Errorf("baseline ceiling %dµs not recorded in report", rep.HitP50BaselineUs)
	}
	hl, ok := rep.MarkerLatency["hit"]
	if !ok {
		t.Fatalf("no hit latency digest in report: %+v", rep.MarkerLatency)
	}
	if hl.Samples < 20 {
		t.Errorf("hit samples %d, want >= 20 from a pure-hit run of 60", hl.Samples)
	}
	if hl.P50Us < 1 || hl.P50Us > hl.MaxUs {
		t.Errorf("hit latency digest inconsistent: %+v", hl)
	}

	// Too few single-request hit samples must fail the gate loudly.
	out.Reset()
	err = run([]string{
		"-seed", "4", "-models", "6", "-requests", "5", "-concurrency", "1",
		"-hit-ratio", "1.0", "-batch", "1",
		"-hit-p50-baseline", baseline,
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "at least 20") {
		t.Errorf("5-request gate run: err = %v, want a sample-count rejection", err)
	}
}
