// segbus-codegen implements the paper's future-work step: it generates
// the arbiter controllers that realise an application schedule — the
// grant programs of every segment arbiter and the central arbiter's
// connection schedule — from the PSDF and PSM models.
//
// Usage:
//
//	segbus-codegen -model design.sbd                  # schedule listing
//	segbus-codegen -model design.sbd -vhdl -out gen/  # VHDL skeletons
//	segbus-codegen -psdf a.xsd -psm b.xsd -vhdl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"segbus/internal/codegen"
	"segbus/internal/dsl"
	"segbus/internal/obs/profflag"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/schema"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-codegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-codegen", flag.ContinueOnError)
	modelPath := fs.String("model", "", "textual model description with a platform section")
	psdfPath := fs.String("psdf", "", "PSDF XML scheme (with -psm, alternative to -model)")
	psmPath := fs.String("psm", "", "PSM XML scheme")
	vhdl := fs.Bool("vhdl", false, "emit VHDL scheduler skeletons instead of the listing")
	outDir := fs.String("out", "", "write the output to <out>/<app>_schedulers.{txt,vhd} instead of stdout")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	var m *psdf.Model
	var plat *platform.Platform
	switch {
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		doc, err := dsl.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		if diags := doc.Validate(); diags.HasErrors() {
			return fmt.Errorf("model validation failed:\n%s", diags)
		}
		if doc.Platform == nil {
			return fmt.Errorf("the model description has no platform section")
		}
		m, plat = doc.Model, doc.Platform
	case *psdfPath != "" && *psmPath != "":
		psdfXML, err := os.ReadFile(*psdfPath)
		if err != nil {
			return err
		}
		psmXML, err := os.ReadFile(*psmPath)
		if err != nil {
			return err
		}
		if m, err = schema.ParsePSDF(psdfXML); err != nil {
			return err
		}
		if plat, err = schema.ParsePSM(psmXML); err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("need -model, or -psdf together with -psm")
	}

	prog, err := codegen.Generate(m, plat)
	if err != nil {
		return err
	}
	text := prog.Listing()
	ext := "txt"
	if *vhdl {
		text = prog.VHDL()
		ext = "vhd"
	}
	if *outDir == "" {
		fmt.Fprint(stdout, text)
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	name := m.Name()
	if name == "" {
		name = "app"
	}
	path := filepath.Join(*outDir, fmt.Sprintf("%s_schedulers.%s", name, ext))
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote", path)
	return nil
}
