package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
)

const fixture = "../../testdata/mp3.sbd"

func TestRunListing(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", fixture}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"arbitration schedule", "CA: 33 inter-segment grants", "SA1:", "SA3:"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRunVHDLToFile(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-vhdl", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "mp3-decoder_schedulers.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "entity sa1_scheduler is") {
		t.Error("VHDL content missing")
	}
}

func TestRunFromSchemes(t *testing.T) {
	dir := t.TempDir()
	psdfXML, err := m2t.GeneratePSDF(apps.MP3Model())
	if err != nil {
		t.Fatal(err)
	}
	psmXML, err := m2t.GeneratePSM(apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	pp := filepath.Join(dir, "a.xsd")
	mp := filepath.Join(dir, "b.xsd")
	if err := os.WriteFile(pp, psdfXML, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, psmXML, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-psdf", pp, "-psm", mp}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SA2:") {
		t.Error("schedule missing")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run([]string{"-model", "nope.sbd"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	// A model without a platform section cannot drive codegen.
	dir := t.TempDir()
	noPlat := filepath.Join(dir, "noplat.sbd")
	if err := os.WriteFile(noPlat, []byte("flow P0 -> P1 items=36 order=1 ticks=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", noPlat}, &out); err == nil {
		t.Error("platform-less model accepted")
	}
}
