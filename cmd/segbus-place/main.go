// segbus-place is the placement tool of the flow (the PlaceTool step
// of section 3.5): it derives the communication matrix from a PSDF
// model, solves the device allocation for a given segment count, and
// prints the allocation with its quality metrics.
//
// Usage:
//
//	segbus-place -psdf gen/mp3-psdf.xsd -segments 3 [-max-load 8]
//	segbus-place -model design.sbd -segments 2 [-matrix]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"segbus/internal/core"
	"segbus/internal/dsl"
	"segbus/internal/obs/profflag"
	"segbus/internal/place"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/schema"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-place:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-place", flag.ContinueOnError)
	psdfPath := fs.String("psdf", "", "PSDF XML scheme")
	modelPath := fs.String("model", "", "textual model description (alternative to -psdf)")
	segments := fs.Int("segments", 2, "number of segments to allocate onto")
	maxLoad := fs.Int("max-load", 0, "maximum processes per segment (0: unlimited)")
	showMatrix := fs.Bool("matrix", false, "print the communication matrix (Figure 8 view)")
	compareRR := fs.Bool("baseline", false, "also print the naive round-robin baseline")
	pinArg := fs.String("pin", "", "comma-separated pins, e.g. P0=1,P4=3 (1-based segments)")
	emitPath := fs.String("emit", "", "write a complete model description (application + placed platform) to this file")
	clocksArg := fs.String("clocks", "", "per-segment clock frequencies for -emit, e.g. 91MHz,98MHz,89MHz")
	caClockArg := fs.String("ca-clock", "111MHz", "central arbiter clock for -emit")
	pkgSize := fs.Int("package-size", 36, "package size for -emit")
	headerTicks := fs.Int("header-ticks", 0, "per-package protocol ticks for -emit")
	caHopTicks := fs.Int("ca-hop-ticks", 0, "CA chain set-up ticks per hop for -emit")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	var m *psdf.Model
	switch {
	case *psdfPath != "":
		data, err := os.ReadFile(*psdfPath)
		if err != nil {
			return err
		}
		m, err = schema.ParsePSDF(data)
		if err != nil {
			return err
		}
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		doc, err := dsl.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		m = doc.Model
	default:
		fs.Usage()
		return fmt.Errorf("one of -psdf or -model is required")
	}

	cm := m.CommunicationMatrix()
	if *showMatrix {
		fmt.Fprintln(stdout, "communication matrix:")
		fmt.Fprint(stdout, cm)
		fmt.Fprintln(stdout)
	}

	opts := place.Options{MaxLoad: *maxLoad}
	if *pinArg != "" {
		opts.Pinned = make(map[psdf.ProcessID]int)
		for _, kv := range strings.Split(*pinArg, ",") {
			name, segStr, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return fmt.Errorf("bad pin %q (want P0=1)", kv)
			}
			proc, err := psdf.ParseProcessName(name)
			if err != nil {
				return err
			}
			seg, err := strconv.Atoi(segStr)
			if err != nil || seg < 1 {
				return fmt.Errorf("bad pin segment %q (1-based)", segStr)
			}
			opts.Pinned[proc] = seg - 1
		}
	}
	alloc, err := place.Solve(cm, *segments, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "allocation: %s\n", alloc)
	fmt.Fprintf(stdout, "score (sum of squared bus loads): %d\n", place.Score(cm, alloc))
	fmt.Fprintf(stdout, "bus loads: %v data items\n", place.BusLoads(cm, alloc))
	fmt.Fprintf(stdout, "inter-segment traffic (hop-weighted): %d data items\n", place.Cost(cm, alloc))

	if *compareRR {
		rr, err := place.RoundRobin(cm, *segments)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nround-robin baseline: %s\n", rr)
		fmt.Fprintf(stdout, "baseline score: %d (optimizer improves by %.1f%%)\n",
			place.Score(cm, rr),
			100*(1-float64(place.Score(cm, alloc))/float64(place.Score(cm, rr))))
	}

	if *emitPath != "" {
		caClock, err := dsl.ParseHz(*caClockArg)
		if err != nil {
			return err
		}
		var clocks []platform.Hz
		if *clocksArg == "" {
			// A sensible default: 100 MHz everywhere.
			for i := 0; i < *segments; i++ {
				clocks = append(clocks, 100*platform.MHz)
			}
		} else {
			for _, c := range strings.Split(*clocksArg, ",") {
				hz, err := dsl.ParseHz(strings.TrimSpace(c))
				if err != nil {
					return err
				}
				clocks = append(clocks, hz)
			}
		}
		if len(clocks) != *segments {
			return fmt.Errorf("%d clocks for %d segments", len(clocks), *segments)
		}
		plat, err := core.PlatformFromAllocation(m.Name()+"-placed", alloc, clocks, caClock, *pkgSize, *headerTicks, *caHopTicks)
		if err != nil {
			return err
		}
		doc := &dsl.Document{Model: m, Platform: plat}
		if ds := doc.Validate(); ds.HasErrors() {
			return fmt.Errorf("emitted description invalid:\n%s", ds)
		}
		if err := os.WriteFile(*emitPath, []byte(doc.Print()), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *emitPath)
	}
	return nil
}
