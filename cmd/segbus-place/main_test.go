package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
)

const fixture = "../../testdata/mp3.sbd"

func TestRunFromModel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-segments", "3", "-matrix", "-baseline"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"allocation:", "score", "bus loads", "round-robin baseline", "communication matrix", "576"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFromPSDF(t *testing.T) {
	data, err := m2t.GeneratePSDF(apps.MP3Model())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "psdf.xsd")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-psdf", path, "-segments", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocation:") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunMaxLoad(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-segments", "3", "-max-load", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	// 15 processes over 3 segments with cap 6: no segment lists more
	// than 6 ids.
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "allocation: ") {
			continue
		}
		for _, seg := range strings.Split(strings.TrimPrefix(line, "allocation: "), "||") {
			if got := len(strings.Fields(seg)); got > 6 {
				t.Errorf("segment hosts %d processes: %q", got, seg)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run([]string{"-model", fixture, "-segments", "0"}, &out); err == nil {
		t.Error("zero segments accepted")
	}
	if err := run([]string{"-model", "nope.sbd"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunPins(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-model", fixture, "-segments", "3", "-pin", "P4=3,P0=1"}, &out); err != nil {
		t.Fatal(err)
	}
	line := ""
	for _, l := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(l, "allocation: ") {
			line = strings.TrimPrefix(l, "allocation: ")
		}
	}
	segs := strings.Split(line, "||")
	if len(segs) != 3 {
		t.Fatalf("allocation = %q", line)
	}
	if !strings.Contains(" "+strings.TrimSpace(segs[2])+" ", " 4 ") {
		t.Errorf("P4 not pinned to segment 3: %q", line)
	}
	if !strings.Contains(" "+strings.TrimSpace(segs[0])+" ", " 0 ") {
		t.Errorf("P0 not pinned to segment 1: %q", line)
	}
	if err := run([]string{"-model", fixture, "-pin", "garbage"}, &out); err == nil {
		t.Error("bad pin accepted")
	}
	if err := run([]string{"-model", fixture, "-pin", "P0=0"}, &out); err == nil {
		t.Error("zero-based pin accepted")
	}
}

func TestRunEmit(t *testing.T) {
	out := filepath.Join(t.TempDir(), "placed.sbd")
	var buf strings.Builder
	err := run([]string{"-model", fixture, "-segments", "3",
		"-emit", out, "-clocks", "91MHz,98MHz,89MHz", "-ca-clock", "111MHz"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "segment 3 clock=89MHz") {
		t.Errorf("emitted description wrong:\n%s", data)
	}
	// The emitted description must feed straight back into the flow.
	var buf2 strings.Builder
	if err := run([]string{"-model", out, "-segments", "2"}, &buf2); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", fixture, "-emit", out, "-clocks", "91MHz"}, &buf2); err == nil {
		t.Error("clock count mismatch accepted")
	}
	if err := run([]string{"-model", fixture, "-emit", out, "-ca-clock", "banana"}, &buf2); err == nil {
		t.Error("bad CA clock accepted")
	}
}
