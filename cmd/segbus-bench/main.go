// segbus-bench regenerates every table and figure of the paper's
// evaluation (section 4) from this repository's implementation and
// prints side-by-side paper-versus-measured comparisons.
//
// Usage:
//
//	segbus-bench               # run all experiments
//	segbus-bench -exp E3       # run one experiment
//	segbus-bench -list         # list experiment ids
//	segbus-bench -markdown     # render results as the EXPERIMENTS.md table
//
// It also records the repository's performance trajectory:
//
//	segbus-bench -bench-json BENCH_5.json      # measure and write a record
//	segbus-bench -bench-json out.json -bench-quick   # CI smoke (fixed small N)
//	segbus-bench -bench-validate BENCH_5.json  # schema-check a committed record
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"segbus/internal/benchrec"
	"segbus/internal/obs/profflag"
	"segbus/internal/paper"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "segbus-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("segbus-bench", flag.ContinueOnError)
	exp := fs.String("exp", "", "run a single experiment by id (E1..E10)")
	list := fs.Bool("list", false, "list experiments and exit")
	markdown := fs.Bool("markdown", false, "render results as Markdown (EXPERIMENTS.md body)")
	outDir := fs.String("out", "", "write per-experiment reports and the regenerated figures (SVG/CSV) to this directory")
	benchJSON := fs.String("bench-json", "", "run the kernel/emulator/serve benchmark battery and write the trajectory record to this file")
	benchQuick := fs.Bool("bench-quick", false, "with -bench-json: fixed small iteration counts (CI smoke) instead of calibrated timing")
	benchValidate := fs.String("bench-validate", "", "schema-check an existing trajectory record and exit")
	pf := profflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.PrintVersion(stdout) {
		return nil
	}
	if err := pf.Start(); err != nil {
		return err
	}
	defer pf.Stop(os.Stderr)

	if *benchValidate != "" {
		data, err := os.ReadFile(*benchValidate)
		if err != nil {
			return err
		}
		if err := benchrec.Validate(data); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: valid trajectory record (%d benchmarks)\n",
			*benchValidate, len(benchrec.RequiredNames()))
		return nil
	}
	if *benchJSON != "" {
		rec, err := benchrec.Run(*benchQuick)
		if err != nil {
			return err
		}
		data, err := rec.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			return err
		}
		for _, res := range rec.Results {
			fmt.Fprintf(stdout, "%-26s %12.1f ns/op %10.1f allocs/op\n",
				res.Name, res.NsPerOp, res.AllocsPerOp)
		}
		fmt.Fprintf(stdout, "sim ps/wall s: %.3g   events/wall s: %.3g\n",
			rec.SimPsPerWallSecond, rec.EventsPerWallSecond)
		fmt.Fprintln(stdout, "wrote", *benchJSON)
		return nil
	}

	if *list {
		for _, e := range paper.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *outDir != "" {
		written, err := paper.WriteArtifacts(*outDir)
		for _, path := range written {
			fmt.Fprintln(stdout, "wrote", path)
		}
		return err
	}

	experiments := paper.All()
	if *exp != "" {
		e, ok := paper.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		experiments = []paper.Experiment{e}
	}

	failed := 0
	for _, e := range experiments {
		res, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *markdown {
			printMarkdown(stdout, res)
		} else {
			fmt.Fprintln(stdout, res)
		}
		if !res.Pass() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their reproduction criteria", failed)
	}
	if !*markdown {
		fmt.Fprintf(stdout, "all %d experiment(s) passed their reproduction criteria\n", len(experiments))
	}
	return nil
}

func printMarkdown(w io.Writer, res *paper.Result) {
	fmt.Fprintf(w, "### %s — %s\n\n", res.ID, res.Title)
	fmt.Fprintln(w, "| Metric | Paper | Measured | OK |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, row := range res.Rows {
		ok := "yes"
		if !row.OK {
			ok = "**NO**"
		}
		metric := row.Metric
		if row.Note != "" {
			metric += " (" + row.Note + ")"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			escapePipes(metric), escapePipes(row.Paper), escapePipes(row.Measured), ok)
	}
	if res.Text != "" {
		fmt.Fprintf(w, "\n```\n%s```\n", ensureNL(res.Text))
	}
	fmt.Fprintln(w)
}

func escapePipes(s string) string { return strings.ReplaceAll(s, "|", "\\|") }

func ensureNL(s string) string {
	if strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}
