package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "communication matrix") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "passed") {
		t.Error("pass summary missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunMarkdown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E9", "-markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "### E9") || !strings.Contains(s, "| Metric | Paper | Measured | OK |") {
		t.Errorf("markdown shape wrong:\n%s", s)
	}
}

// TestRunAllExperiments is the binary-level reproduction gate: every
// experiment must pass its criteria.
func TestRunAllExperiments(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all 10 experiment(s) passed") {
		t.Error("summary missing")
	}
}

// TestRunBenchJSONQuick drives the trajectory recorder end to end:
// quick measurement, JSON on disk, and the validator accepting it.
func TestRunBenchJSONQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-bench-json", path, "-bench-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kernel/event_throughput") {
		t.Errorf("battery summary missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-bench-validate", path}, &out); err != nil {
		t.Fatalf("freshly written record rejected: %v", err)
	}
	if !strings.Contains(out.String(), "valid trajectory record") {
		t.Errorf("validate output:\n%s", out.String())
	}
}

func TestRunBenchValidateRejects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-bench-validate", path}, &out); err == nil {
		t.Error("invalid record accepted")
	}
	if err := run([]string{"-bench-validate", filepath.Join(t.TempDir(), "absent.json")}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"E1.txt", "E10.txt", "fig10.svg", "fig11_s18.svg", "legend.svg", "fig10.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
