// Extensions beyond the published technique: generate the arbiter
// controllers that implement the application schedule (the paper's
// stated future work) and rank configurations by estimated energy
// next to execution time (the power angle its conclusion raises).
//
//	go run ./examples/arbitergen
package main

import (
	"fmt"
	"log"
	"strings"

	"segbus"
)

func main() {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)

	// 1. Arbiter code generation: the grant programs every SA and the
	// CA step through to realise the schedule in hardware.
	prog, err := segbus.GenerateArbiters(m, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== arbitration schedule (excerpt) ===")
	printExcerpt(prog.Listing(), 18)

	fmt.Println("\n=== generated VHDL (excerpt) ===")
	printExcerpt(prog.VHDL(), 24)

	// 2. Energy estimation: emulate each candidate configuration and
	// rank by energy next to execution time.
	fmt.Println("\n=== performance and energy per configuration ===")
	fmt.Printf("%-22s %12s %12s %10s\n", "configuration", "exec (us)", "energy (nJ)", "avg (mW)")
	for _, c := range []struct {
		label string
		plat  *segbus.Platform
	}{
		{"1-segment", segbus.MP3Platform1(36)},
		{"2-segment", segbus.MP3Platform2(36)},
		{"3-segment", segbus.MP3Platform3(36)},
		{"3-segment, P9 moved", segbus.MP3Platform3MovedP9(36)},
	} {
		est, err := segbus.Estimate(m, c.plat, segbus.Options{})
		if err != nil {
			log.Fatal(err)
		}
		en, err := segbus.EstimateEnergy(m, c.plat, est.Report, segbus.EnergyParams{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.2f %12.2f %10.2f\n",
			c.label, float64(est.ExecutionTimePs())/1e6, en.TotalPJ/1e3, en.AvgPowerM)
	}
	fmt.Println("\nlocalising traffic (3-segment vs the moved-P9 variant) saves both")
	fmt.Println("time and energy — the configuration decision the technique exists for.")
}

func printExcerpt(s string, lines int) {
	for i, line := range strings.Split(s, "\n") {
		if i >= lines {
			fmt.Println("  ...")
			return
		}
		fmt.Println(line)
	}
}
