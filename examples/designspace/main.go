// Design-space exploration: the estimation technique's motivating use
// case. For a synthetic signal-processing application, sweep the
// segment count, the package size and the placement strategy; estimate
// every candidate concurrently; and report the ranking the designer
// uses to pick a configuration before committing to RTL.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"segbus"
)

func main() {
	// A stereo-ish workload: two parallel 6-stage pipelines fed by one
	// source, merged by one sink — 14 processes. The two chains share
	// ordering numbers stage by stage, so they may execute
	// concurrently; the stages are lightweight streaming filters
	// (15 ticks per package), so the single shared bus — not the
	// functional units — is the contended resource. Whether the
	// concurrency materialises depends on the platform configuration,
	// which is exactly what the exploration decides.
	m := segbus.NewModel("dsp-chain")
	const items = 360
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: items, Order: 1, Ticks: 150})
	m.AddFlow(segbus.Flow{Source: 0, Target: 7, Items: items, Order: 2, Ticks: 150})
	left := []segbus.ProcessID{1, 2, 3, 4, 5, 6, 13}
	right := []segbus.ProcessID{7, 8, 9, 10, 11, 12, 13}
	for i := 0; i < 6; i++ {
		order := 3 + i // stage i of both channels shares one order
		m.AddFlow(segbus.Flow{Source: left[i], Target: left[i+1], Items: items, Order: order, Ticks: 15})
		m.AddFlow(segbus.Flow{Source: right[i], Target: right[i+1], Items: items, Order: order, Ticks: 15})
	}

	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	// Candidate platforms: for each segment count, let the placement
	// tool allocate processes from the communication matrix; sweep
	// the package size on the best structure.
	clockBanks := [][]segbus.Hz{
		{90 * segbus.MHz},
		{90 * segbus.MHz, 95 * segbus.MHz},
		{90 * segbus.MHz, 95 * segbus.MHz, 85 * segbus.MHz},
		{90 * segbus.MHz, 95 * segbus.MHz, 85 * segbus.MHz, 100 * segbus.MHz},
	}
	var candidates []segbus.Candidate
	for _, clocks := range clockBanks {
		for _, s := range []int{18, 36, 72} {
			name := fmt.Sprintf("%dseg/s=%d", len(clocks), s)
			p, err := segbus.AutoPlace(name, m, clocks, 110*segbus.MHz, s, 25, 25)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			candidates = append(candidates, segbus.Candidate{Label: name, Platform: p})
		}
	}

	fmt.Printf("exploring %d candidate configurations in parallel...\n\n", len(candidates))
	ranked, table := segbus.Explore(m, candidates, 0)
	fmt.Print(table)

	best, err := segbus.Best(ranked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected configuration: %s\n", best.Candidate.Label)
	fmt.Printf("allocation: %s\n", best.Report.Platform)
	fmt.Printf("estimated execution time: %.2f us\n", float64(best.Report.ExecutionTimePs)/1e6)

	// Sanity-check the winner against the refined model before
	// trusting the ranking.
	acc, err := segbus.AccuracyExperiment(best.Candidate.Label, m, best.Candidate.Platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(acc)
}
