// The full design methodology of Figure 3, step by step: parse a
// textual model description (the DSL stand-in for the graphical
// modeling environment), validate it, apply the model-to-text
// transformation to obtain the PSDF and PSM XML schemes, parse the
// schemes back (the emulator set-up phase) and run the emulation —
// exactly the hand-off sequence of the paper's tool-chain.
//
//	go run ./examples/modelflow
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"segbus"
)

func main() {
	// Step 1: the model description. Normally this comes from a file
	// (see testdata/mp3.sbd for the paper's example); here it is
	// inline for self-containment.
	text := `
application sensor-fusion
nominal-package-size 36

# Two sensor front ends feed a fusion stage; the result is filtered
# and emitted.
flow P0 -> P2 items=180 order=1 ticks=200
flow P1 -> P2 items=180 order=1 ticks=220
flow P2 -> P3 items=360 order=2 ticks=90
flow P3 -> P4 items=360 order=3 ticks=60

platform fusion-2seg
ca-clock 120MHz
package-size 36
header-ticks 20
ca-hop-ticks 20
segment 1 clock=100MHz processes=P0,P1,P2
segment 2 clock=95MHz processes=P3,P4
`
	doc, err := segbus.ParseDSL(strings.NewReader(text))
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: validation (the OCL-constraint pass of the DSL).
	if diags := doc.Validate(); len(diags) > 0 {
		fmt.Println("validation findings:")
		fmt.Print(diags)
		if diags.HasErrors() {
			os.Exit(1)
		}
	} else {
		fmt.Println("model validated: no findings")
	}

	// Step 3: the model-to-text transformation.
	psdfXML, psmXML, err := segbus.Transform(doc.Model, doc.Platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== generated PSDF scheme (excerpt) ===")
	printExcerpt(string(psdfXML), 14)
	fmt.Println("\n=== generated PSM scheme (excerpt) ===")
	printExcerpt(string(psmXML), 18)

	// Step 4: the emulator parses the schemes and runs. The package
	// size is supplied alongside the schemes, as in the paper.
	est, err := segbus.EstimateXML(psdfXML, psmXML, 36, segbus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== emulation report ===")
	fmt.Print(est.Report)

	// Step 5: the designer's decision data.
	fmt.Printf("\nestimated execution time: %.2f us\n", float64(est.ExecutionTimePs())/1e6)
	for _, bu := range est.BUs {
		fmt.Printf("%s carried %d packages (mean waiting period %.1f ticks)\n",
			bu.Name, bu.Packages, bu.MeanWP)
	}
}

func printExcerpt(s string, lines int) {
	for i, line := range strings.Split(s, "\n") {
		if i >= lines {
			fmt.Println("  ...")
			return
		}
		fmt.Println(line)
	}
}
