// The paper's section-4 example end to end: the simplified stereo MP3
// decoder emulated on the one-, two- and three-segment platform
// configurations, the accuracy experiments against the refined model,
// the border-unit UP/WP analysis and the per-process timeline.
//
//	go run ./examples/mp3decoder
package main

import (
	"fmt"
	"log"

	"segbus"
)

func main() {
	m := segbus.MP3Decoder()

	fmt.Println("=== the application (Figure 7/8) ===")
	for _, p := range m.Processes() {
		fmt.Printf("%-4s %s\n", p, segbus.MP3DecoderRoles()[p])
	}
	fmt.Printf("\ncommunication matrix (Figure 8):\n%v\n", m.CommunicationMatrix())

	// Emulate all three configurations of Figure 9 concurrently.
	fmt.Println("=== configuration comparison (package size 36) ===")
	ranked, table := segbus.Explore(m, []segbus.Candidate{
		{Label: "1-segment", Platform: segbus.MP3Platform1(36)},
		{Label: "2-segment", Platform: segbus.MP3Platform2(36)},
		{Label: "3-segment", Platform: segbus.MP3Platform3(36)},
	}, 0)
	for _, r := range ranked {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Candidate.Label, r.Err)
		}
	}
	fmt.Print(table)

	// The paper's main run: three segments, package size 36.
	fmt.Println("\n=== three-segment emulation report (section 4) ===")
	est, err := segbus.Estimate(m, segbus.MP3Platform3(36), segbus.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(est.Report)

	fmt.Println("\n=== border-unit analysis (UP / WP, section 4) ===")
	for _, bu := range est.BUs {
		fmt.Printf("%s: UP=%d TCT=%d meanWP=%.1f\n", bu.Name, bu.UP, bu.TCT, bu.MeanWP)
	}

	fmt.Println("\n=== process progress timeline (Figure 10) ===")
	fmt.Print(est.Trace.Timeline())

	// The three accuracy experiments.
	fmt.Println("\n=== accuracy against the refined platform model ===")
	for _, c := range []struct {
		label string
		plat  *segbus.Platform
	}{
		{"3 segments, s=36       ", segbus.MP3Platform3(36)},
		{"3 segments, s=18       ", segbus.MP3Platform3(18)},
		{"3 segments, s=36, P9@3 ", segbus.MP3Platform3MovedP9(36)},
	} {
		acc, err := segbus.AccuracyExperiment(c.label, m, c.plat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(acc)
	}
}
