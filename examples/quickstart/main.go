// Quickstart: model a four-process application as PSDF, place it on a
// two-segment SegBus platform, and estimate its performance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"segbus"
)

func main() {
	// The application: a producer fans out to two workers, which
	// reduce into a sink. Flows sharing ordering number 1 (and 2) run
	// concurrently; the tuple is (target, data items, order, ticks
	// per package).
	m := segbus.NewModel("quickstart")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 288, Order: 1, Ticks: 120})
	m.AddFlow(segbus.Flow{Source: 0, Target: 2, Items: 288, Order: 1, Ticks: 120})
	m.AddFlow(segbus.Flow{Source: 1, Target: 3, Items: 288, Order: 2, Ticks: 80})
	m.AddFlow(segbus.Flow{Source: 2, Target: 3, Items: 288, Order: 2, Ticks: 80})

	// The platform: two segments in their own clock domains, one
	// worker pipeline per segment, a 36-item package size.
	p := segbus.NewPlatform("quickstart-2seg", 100*segbus.MHz, 36)
	p.AddSegment(90*segbus.MHz, 0, 1, 3)
	p.AddSegment(95*segbus.MHz, 2)

	est, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== emulation report ===")
	fmt.Print(est.Report)

	fmt.Println("\n=== border-unit analysis ===")
	for _, bu := range est.BUs {
		fmt.Printf("%s: %d packages, useful period %d ticks, mean waiting period %.1f ticks\n",
			bu.Name, bu.Packages, bu.UP, bu.MeanWP)
	}

	fmt.Printf("\nestimated execution time: %.2f us\n",
		float64(est.ExecutionTimePs())/1e6)

	// How good is the estimate? Compare against the refined
	// (ground-truth) timing model.
	acc, err := segbus.AccuracyExperiment("quickstart", m, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(acc)
}
