// The library's second case study: a baseline JPEG encoder. This
// example chains the newest analysis features — sensitivity sweeps,
// congestion diagnostics and the energy estimate — into one
// configuration-decision session.
//
//	go run ./examples/jpegencoder
package main

import (
	"fmt"
	"log"

	"segbus"
)

func main() {
	m := segbus.JPEGEncoder()
	fmt.Println("=== the application ===")
	for _, p := range m.Processes() {
		fmt.Printf("%-4s %s\n", p, segbus.JPEGEncoderRoles()[p])
	}

	// Candidate structures: everything on one bus versus the
	// three-segment split (luma pipeline / chroma pipelines / entropy
	// back end).
	one := segbus.JPEGPlatform1(segbus.JPEGPackageSize)
	three := segbus.JPEGPlatform3(segbus.JPEGPackageSize)

	fmt.Println("\n=== configuration comparison ===")
	ranked, table := segbus.Explore(m, []segbus.Candidate{
		{Label: "1-segment", Platform: one},
		{Label: "3-segment", Platform: three},
	}, 0)
	for _, r := range ranked {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	fmt.Print(table)

	// How sensitive is the three-segment design to the package size?
	fmt.Println("\n=== package-size sensitivity (3 segments) ===")
	curve := segbus.SweepPackageSizes(m, three, []int{16, 32, 64, 128, 256})
	fmt.Print(curve.Table())

	// Is any border unit congested in the chosen configuration?
	est, err := segbus.Estimate(m, three, segbus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== border-unit congestion ===")
	fmt.Print(segbus.CongestionReport(est.Report))

	// And what does it cost in energy?
	en, err := segbus.EstimateEnergy(m, three, est.Report, segbus.EnergyParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== energy ===")
	fmt.Print(en)
}
