module segbus

go 1.22
