package segbus_test

// Smoke tests for the runnable examples: each must build, run to
// completion and produce the landmarks of its narrative. Kept at the
// module root so `go test ./...` exercises the examples the README
// advertises.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./examples/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run binaries")
	}
	cases := map[string][]string{
		"quickstart": {
			"emulation report", "border-unit analysis", "estimated execution time", "accuracy",
		},
		"mp3decoder": {
			"Figure 8", "configuration comparison", "3-segment", "UP=2304",
			"progress timeline", "accuracy against the refined platform model", "95.6%",
		},
		"designspace": {
			"exploring", "selected configuration", "2seg/s=72", "accuracy",
		},
		"modelflow": {
			"model validated", "generated PSDF scheme", "generated PSM scheme",
			"emulation report", "estimated execution time",
		},
		"arbitergen": {
			"arbitration schedule", "entity sa1_scheduler", "energy (nJ)", "3-segment, P9 moved",
		},
		"jpegencoder": {
			"colour conversion", "package-size sensitivity", "CONGESTED", "dynamic",
		},
	}
	for name, landmarks := range cases {
		name, landmarks := name, landmarks
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out := runExample(t, name)
			for _, want := range landmarks {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
}
